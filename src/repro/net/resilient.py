"""Fault-tolerant client for the ``repro-net`` protocol.

:class:`ResilientClient` wraps :class:`~repro.net.client.NetClient` with
the retry discipline a real network demands:

* **per-call deadlines** — every verb takes a time budget; connect,
  backoff sleeps, and retries all draw from it;
* **exponential backoff with decorrelated jitter** — seeded, so chaos
  campaigns replay byte-identically; server ``retry_after`` hints (shed /
  degraded envelopes) take precedence over the computed backoff;
* **a circuit breaker per endpoint** — after ``breaker_threshold``
  consecutive transport failures the endpoint is held open for
  ``breaker_reset_s`` (calls wait for the half-open probe window if their
  deadline allows, else raise :class:`CircuitOpenError`);
* **automatic reconnect + handshake replay** — a poisoned connection
  (:class:`~repro.net.protocol.ConnectionClosed`, torn frame, reset) is
  dropped and rebuilt, replaying the version handshake;
* **read failover and hedging** — reads rotate across
  ``[primary] + replicas``; a read that outlives ``hedge_after_s`` is
  raced against the next endpoint and the first answer wins;
* **idempotent writes** — :meth:`submit` stamps a client-generated
  idempotency key on the first attempt and replays the *same* key on
  every retry, so a retried submit after a lost ACK deduplicates
  server-side instead of double-applying.

Exactly-once wording is deliberate: the *effect* is applied at most once
by the server's idempotency index and at least once by the retry loop —
see docs/faultproxy.md for the failure-mode matrix.

Metrics (optional, via :meth:`bind_metrics`): ``client_retries``,
``client_reconnects``, ``hedged_reads``, ``breaker_state``
(0=closed, 1=open, 2=half-open), ``client_deadline_exceeded``.
"""

from __future__ import annotations

import queue
import threading
import time
import uuid
from typing import Any, Callable, Sequence

import numpy as np

from repro.net.client import NetClient
from repro.net.protocol import (
    MAX_FRAME_BYTES,
    ConnectionClosed,
    ProtocolError,
    ServerError,
)

__all__ = [
    "CircuitOpenError",
    "DeadlineExceeded",
    "ResilientClient",
    "RetryPolicy",
]

# server error codes that mean "try again shortly" rather than "you are
# wrong": admission sheds, degraded-mode refusals, and an idempotent
# retry racing its still-in-flight original
_RETRYABLE_CODES = frozenset(
    {"shed", "shed_degraded", "shed_query", "idem_in_flight"})


class DeadlineExceeded(TimeoutError):
    """The per-call budget ran out before an attempt succeeded."""


class CircuitOpenError(ConnectionError):
    """The endpoint's breaker is open and the deadline cannot cover the
    wait until its half-open probe window."""


class RetryPolicy:
    """Backoff/breaker knobs, bundled so callers can tune one object."""

    def __init__(
        self,
        *,
        deadline_s: float = 10.0,
        attempt_timeout_s: float = 3.0,
        backoff_base_s: float = 0.02,
        backoff_cap_s: float = 1.0,
        breaker_threshold: int = 5,
        breaker_reset_s: float = 0.5,
        hedge_after_s: float | None = None,
        seed: int = 0,
    ) -> None:
        if deadline_s <= 0 or attempt_timeout_s <= 0:
            raise ValueError("deadline_s and attempt_timeout_s must be > 0")
        if breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        self.deadline_s = deadline_s
        self.attempt_timeout_s = attempt_timeout_s
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.breaker_threshold = breaker_threshold
        self.breaker_reset_s = breaker_reset_s
        self.hedge_after_s = hedge_after_s
        self.seed = seed


class _Breaker:
    """Per-endpoint circuit breaker: closed -> open -> half-open."""

    CLOSED, OPEN, HALF_OPEN = 0, 1, 2

    def __init__(self, threshold: int, reset_s: float) -> None:
        self.threshold = threshold
        self.reset_s = reset_s
        self.failures = 0
        self.opened_at = 0.0
        self.state = self.CLOSED
        self.trips = 0            # CLOSED/HALF_OPEN -> OPEN transitions
        self._lock = threading.Lock()

    def allow(self, now: float) -> bool:
        """May an attempt proceed right now?  Open -> half-open after the
        reset window (one probe allowed)."""
        with self._lock:
            if self.state == self.CLOSED:
                return True
            if now - self.opened_at >= self.reset_s:
                self.state = self.HALF_OPEN
                return True
            return False

    def wait_s(self, now: float) -> float:
        """Seconds until the next probe window (0 when allowed)."""
        with self._lock:
            if self.state == self.CLOSED:
                return 0.0
            return max(0.0, self.reset_s - (now - self.opened_at))

    def record(self, ok: bool, now: float) -> None:
        with self._lock:
            if ok:
                self.failures = 0
                self.state = self.CLOSED
            else:
                self.failures += 1
                if (self.failures >= self.threshold
                        or self.state == self.HALF_OPEN):
                    if self.state != self.OPEN:
                        self.trips += 1
                    self.state = self.OPEN
                    self.opened_at = now


class ResilientClient:
    """Retrying, breaker-guarded, failover-capable net client.

    Parameters
    ----------
    host / port:
        The primary (write) endpoint.
    replicas:
        Optional ``[(host, port), ...]`` read-only endpoints; reads fail
        over (and hedge) across ``[primary] + replicas``.
    policy:
        A :class:`RetryPolicy`; defaults are production-ish but every
        chaos campaign passes a seeded, tighter one.
    """

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str = "default",
        *,
        replicas: Sequence[tuple[str, int]] = (),
        policy: RetryPolicy | None = None,
        max_frame: int = MAX_FRAME_BYTES,
        client_id: str | None = None,
    ) -> None:
        self.tenant = tenant
        self.policy = policy or RetryPolicy()
        self._max_frame = max_frame
        self._endpoints: list[tuple[str, int]] = [(host, port)]
        self._endpoints += [tuple(r) for r in replicas]
        self._conns: dict[int, NetClient | None] = {
            i: None for i in range(len(self._endpoints))}
        self._breakers = [
            _Breaker(self.policy.breaker_threshold,
                     self.policy.breaker_reset_s)
            for _ in self._endpoints
        ]
        self._rng = np.random.default_rng(self.policy.seed * 7919 + 53)
        self._prev_backoff = self.policy.backoff_base_s
        self._read_cursor = 0
        self._closed = False
        self._lock = threading.Lock()
        self.client_id = client_id or uuid.uuid4().hex[:12]
        self._idem_counter = 0
        # local observability (always-on attrs; bind_metrics mirrors them)
        self.retries = 0
        self.reconnects = 0
        self.hedged = 0
        self.deadline_exceeded = 0
        self.dedup_replays = 0
        self._metrics: dict[str, Any] = {}

    # -- metrics ----------------------------------------------------------

    def bind_metrics(self, registry, prefix: str = "client") -> None:
        """Mirror the client's counters into a
        :class:`~repro.service.metrics.MetricsRegistry`."""
        self._metrics = {
            "retries": registry.counter(f"{prefix}_retries"),
            "reconnects": registry.counter(f"{prefix}_reconnects"),
            "hedged_reads": registry.counter(f"{prefix}_hedged_reads"),
            "deadline_exceeded": registry.counter(
                f"{prefix}_deadline_exceeded"),
            "dedup_replays": registry.counter(f"{prefix}_dedup_replays"),
            "breaker_state": registry.gauge(f"{prefix}_breaker_state"),
        }

    def _m_inc(self, key: str) -> None:
        m = self._metrics.get(key)
        if m is not None:
            m.inc()

    def _m_breaker(self) -> None:
        g = self._metrics.get("breaker_state")
        if g is not None:
            g.set(float(self._breakers[0].state))

    @property
    def breaker_trips(self) -> int:
        """Total closed→open transitions across every endpoint breaker."""
        return sum(b.trips for b in self._breakers)

    # -- connection management -------------------------------------------

    def _connect(self, idx: int, timeout: float) -> NetClient:
        conn = self._conns.get(idx)
        if conn is not None and not conn.closed:
            return conn
        if conn is not None:
            self.reconnects += 1
            self._m_inc("reconnects")
        host, port = self._endpoints[idx]
        # a fresh NetClient replays the version handshake in __init__
        client = NetClient(host, port, tenant=self.tenant,
                           timeout=timeout, max_frame=self._max_frame)
        self._conns[idx] = client
        return client

    def _drop(self, idx: int) -> None:
        conn = self._conns.get(idx)
        if conn is not None:
            conn.close()

    def close(self) -> None:
        """Close every cached connection; further calls raise."""
        self._closed = True
        for idx in self._conns:
            self._drop(idx)

    def __enter__(self) -> "ResilientClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- retry core -------------------------------------------------------

    def _backoff_s(self, hint: float | None) -> float:
        """Decorrelated jitter (AWS-style): sleep ~ U(base, prev*3),
        capped; a server ``retry_after`` hint sets the floor."""
        base = self.policy.backoff_base_s
        hi = max(base * 1.001, min(self.policy.backoff_cap_s,
                                   self._prev_backoff * 3.0))
        sleep = float(self._rng.uniform(base, hi))
        self._prev_backoff = sleep
        if hint is not None:
            sleep = max(sleep, float(hint))
        return min(sleep, self.policy.backoff_cap_s if hint is None
                   else max(self.policy.backoff_cap_s, float(hint)))

    def _call_with_retry(
        self,
        attempt: Callable[[NetClient], Any],
        *,
        endpoints: Sequence[int],
        deadline_s: float | None,
        retryable_server_codes: frozenset = _RETRYABLE_CODES,
    ) -> Any:
        """Run ``attempt`` against the endpoint list until success, a
        non-retryable error, or the deadline."""
        if self._closed:
            raise ConnectionClosed("ResilientClient is closed")
        budget = self.policy.deadline_s if deadline_s is None else deadline_s
        t_end = time.monotonic() + budget
        last_exc: BaseException | None = None
        first = True
        epi = 0
        while True:
            now = time.monotonic()
            remaining = t_end - now
            if remaining <= 0.0:
                self.deadline_exceeded += 1
                self._m_inc("deadline_exceeded")
                raise DeadlineExceeded(
                    f"call budget {budget:.3f}s exhausted"
                ) from last_exc
            idx = endpoints[epi % len(endpoints)]
            breaker = self._breakers[idx]
            if not breaker.allow(now):
                if len(endpoints) > 1:
                    epi += 1  # fail over instead of waiting
                    if any(self._breakers[e].allow(now) for e in endpoints):
                        continue
                wait = min(breaker.wait_s(now), remaining)
                if wait >= remaining:
                    self._m_breaker()
                    raise CircuitOpenError(
                        f"breaker open for {self._endpoints[idx]}, "
                        f"probe in {breaker.wait_s(now):.3f}s > deadline"
                    ) from last_exc
                time.sleep(wait)
                continue
            if not first:
                self.retries += 1
                self._m_inc("retries")
            first = False
            try:
                timeout = min(self.policy.attempt_timeout_s, remaining)
                conn = self._connect(idx, timeout)
                result = attempt(conn)
            except ServerError as exc:
                breaker.record(True, time.monotonic())  # transport is fine
                self._m_breaker()
                if exc.code not in retryable_server_codes:
                    raise
                last_exc = exc
                time.sleep(min(self._backoff_s(exc.retry_after),
                               max(0.0, t_end - time.monotonic())))
                continue
            except (ConnectionClosed, ProtocolError, OSError) as exc:
                breaker.record(False, time.monotonic())
                self._m_breaker()
                self._drop(idx)
                last_exc = exc
                epi += 1  # prefer the next endpoint on transport faults
                time.sleep(min(self._backoff_s(None),
                               max(0.0, t_end - time.monotonic())))
                continue
            breaker.record(True, time.monotonic())
            self._m_breaker()
            return result

    # -- writes -----------------------------------------------------------

    def next_idem_key(self) -> str:
        """A fresh client-unique idempotency key."""
        self._idem_counter += 1
        return f"{self.client_id}-{self._idem_counter}"

    def submit(self, op: str, u: int, v: int,
               deadline_s: float | None = None) -> str:
        """Submit one update with at-most-once apply semantics.

        The idempotency key is minted once and replayed on every retry;
        if the first attempt's ACK was lost on the wire, the retry returns
        the server's recorded outcome (``deduped``) instead of
        re-offering the op.
        """
        info = self.submit_info(op, u, v, deadline_s=deadline_s)
        return info["status"]

    def submit_info(self, op: str, u: int, v: int,
                    deadline_s: float | None = None) -> dict[str, Any]:
        """Like :meth:`submit` but returns the full envelope (the
        ``deduped`` field tells you a retry was absorbed server-side)."""
        key = self.next_idem_key()

        def attempt(conn: NetClient) -> dict[str, Any]:
            return conn.submit_info(op, u, v, idem=key)

        info = self._call_with_retry(
            attempt, endpoints=[0], deadline_s=deadline_s)
        if info.get("deduped"):
            self.dedup_replays += 1
            self._m_inc("dedup_replays")
        return info

    def flush(self, deadline_s: float | None = None) -> int:
        """Flush the primary's pending batch; returns the batch size."""
        return self._call_with_retry(
            lambda c: c.flush(), endpoints=[0], deadline_s=deadline_s)

    def admin(self, action: str = "stats",
              deadline_s: float | None = None) -> dict[str, Any]:
        """Run an admin action on the primary (retried like any call)."""
        return self._call_with_retry(
            lambda c: c.admin(action), endpoints=[0], deadline_s=deadline_s)

    # -- reads ------------------------------------------------------------

    def _read_endpoints(self) -> list[int]:
        """All endpoints, rotated so reads spread across replicas."""
        n = len(self._endpoints)
        if n == 1:
            return [0]
        with self._lock:
            start = self._read_cursor % n
            self._read_cursor += 1
        return [(start + i) % n for i in range(n)]

    def query(self, kind: str, payload: Any = None,
              consistency: str = "snapshot",
              deadline_s: float | None = None) -> Any:
        """A read with failover/hedging; returns just the result value."""
        return self.query_info(
            kind, payload, consistency, deadline_s=deadline_s)["value"]

    def query_info(self, kind: str, payload: Any = None,
                   consistency: str = "snapshot",
                   deadline_s: float | None = None) -> dict[str, Any]:
        """A read with failover and (optional) hedging.

        With ``policy.hedge_after_s`` set and >1 endpoint, an attempt that
        has not answered within the hedge delay is raced against the next
        endpoint; first answer wins and the loser is discarded.
        """
        order = self._read_endpoints()
        if self.policy.hedge_after_s is not None and len(order) > 1:
            return self._hedged_read(order, kind, payload, consistency,
                                     deadline_s)
        return self._call_with_retry(
            lambda c: c.query_info(kind, payload, consistency),
            endpoints=order, deadline_s=deadline_s)

    def query_batch(self, items, consistency: str = "snapshot",
                    deadline_s: float | None = None) -> dict[str, Any]:
        """Submit a whole query batch with the same failover as reads."""
        order = self._read_endpoints()
        return self._call_with_retry(
            lambda c: c.query_batch(items, consistency),
            endpoints=order, deadline_s=deadline_s)

    def _hedged_read(self, order: Sequence[int], kind: str, payload: Any,
                     consistency: str,
                     deadline_s: float | None) -> dict[str, Any]:
        """Race the first endpoint against one hedge on the next.

        Each leg is a single attempt on a *throwaway* connection — the
        cached per-endpoint connections are not thread-safe, and a losing
        leg must be discardable without desyncing the winner's stream.
        The hedge leg only starts after ``hedge_after_s``; if both legs
        fail, the normal failover retry loop gets the remaining budget.
        """
        budget = (self.policy.deadline_s if deadline_s is None
                  else deadline_s)
        t_end = time.monotonic() + budget
        results: "queue.Queue[tuple[bool, Any]]" = queue.Queue()

        def leg(idx: int) -> None:
            conn = None
            try:
                host, port = self._endpoints[idx]
                conn = NetClient(
                    host, port, tenant=self.tenant,
                    timeout=min(self.policy.attempt_timeout_s, budget),
                    max_frame=self._max_frame)
                out = conn.query_info(kind, payload, consistency)
                results.put((True, out))
            except BaseException as exc:  # noqa: BLE001 - raced, rethrown
                results.put((False, exc))
            finally:
                if conn is not None:
                    conn.close()

        t0 = threading.Thread(target=leg, args=(order[0],), daemon=True)
        t0.start()
        outstanding = 1
        first_err: BaseException | None = None
        try:
            ok, out = results.get(timeout=self.policy.hedge_after_s)
            outstanding -= 1
            if ok:
                return out
            first_err = out
        except queue.Empty:
            pass
        # first leg slow or failed: hedge on the next endpoint
        self.hedged += 1
        self._m_inc("hedged_reads")
        t1 = threading.Thread(target=leg, args=(order[1],), daemon=True)
        t1.start()
        outstanding += 1
        while outstanding:
            try:
                ok, out = results.get(
                    timeout=max(0.01, t_end - time.monotonic()))
            except queue.Empty:
                break
            outstanding -= 1
            if ok:
                return out
            first_err = first_err or out
            if time.monotonic() >= t_end:
                break
        if (isinstance(first_err, ServerError)
                and first_err.code not in _RETRYABLE_CODES):
            raise first_err
        remaining = t_end - time.monotonic()
        if remaining > 0:
            # both legs lost to transport faults: hand what's left of the
            # budget to the ordinary failover retry loop
            return self._call_with_retry(
                lambda c: c.query_info(kind, payload, consistency),
                endpoints=list(order), deadline_s=remaining)
        self.deadline_exceeded += 1
        self._m_inc("deadline_exceeded")
        raise DeadlineExceeded("hedged read: no leg answered in budget")

    def edges(self, deadline_s: float | None = None) -> set[tuple[int, int]]:
        """The graph edge set as ``(u, v)`` tuples (read path)."""
        return {tuple(e) for e in self.query("edges", deadline_s=deadline_s)}

    def metrics_text(self, deadline_s: float | None = None) -> str:
        """The primary's Prometheus text exposition."""
        return self._call_with_retry(
            lambda c: c.metrics(), endpoints=[0], deadline_s=deadline_s)

"""Replica-scaling benchmark for the networked serving layer (SRV2).

Drives a seeded read-heavy request stream (default 95/5 read-write, from
:func:`repro.workloads.streams.request_stream`) against a single-writer
primary plus N read replicas, then drains, waits for full catch-up, and
oracle-verifies replica equivalence before reporting throughput.

Capacity model: this box has one core, so real CPU-bound replica scaling
is unmeasurable here.  Instead each serving front end is given one query
slot and a **pinned simulated per-query service time** (an asyncio sleep
inside the slot — see ``NetServerConfig.service_time``), so aggregate
read capacity is ``replicas / service_time`` by construction and the
benchmark measures everything *around* that pinned cost: protocol,
shipping, admission, drain, and equivalence.  The report says which mode
produced it; on a many-core box ``service_time=0`` measures the real
engine.

Two modes:

- ``inproc``: primary and replicas as threads in this process (fast, used
  by the ``tools/bench_gate.py`` SRV2 smoke scenario).
- ``subprocess``: primary and replicas as real ``repro.cli`` processes on
  localhost (used by the CI ``net-smoke`` job), supporting
  ``kill_replica=True`` — one replica is SIGKILLed mid-run, serving
  continues on the survivors, and a freshly bootstrapped replacement must
  still converge to exact equivalence.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.net.client import NetClient
from repro.net.protocol import ProtocolError, ServerError
from repro.net.replica import LogShippingReplica, ReplicaConfig, run_replica
from repro.net.server import NetServerConfig, ThreadedServer
from repro.net.tenants import TenantConfig, TenantManager
from repro.workloads.streams import request_stream

__all__ = ["BenchNetConfig", "BenchNetReport", "run_bench_net"]


@dataclass
class BenchNetConfig:
    replicas: int = 1
    requests: int = 2000
    read_fraction: float = 0.95
    n: int = 96
    m: int = 220
    k: int = 2
    seed: int = 1234
    service_time: float = 0.002     # pinned per-query engine seconds
    query_slots: int = 1            # slots per serving front end
    mode: str = "inproc"            # "inproc" | "subprocess"
    kill_replica: bool = False      # SIGKILL one replica mid-run
    converge_timeout: float = 30.0


@dataclass
class BenchNetReport:
    config: BenchNetConfig
    elapsed_s: float = 0.0
    reads: int = 0
    writes: int = 0
    read_throughput_rps: float = 0.0
    read_p50_ms: float = 0.0
    read_p99_ms: float = 0.0
    stale_reads: int = 0
    sheds: int = 0
    killed_replica: bool = False
    converged: bool = False
    verified: bool = False
    violations: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        """JSON-safe report payload (the ``--json`` output)."""
        return {
            "mode": self.config.mode,
            "replicas": self.config.replicas,
            "requests": self.config.requests,
            "read_fraction": self.config.read_fraction,
            "service_time": self.config.service_time,
            "elapsed_s": round(self.elapsed_s, 4),
            "reads": self.reads,
            "writes": self.writes,
            "read_throughput_rps": round(self.read_throughput_rps, 1),
            "read_p50_ms": round(self.read_p50_ms, 3),
            "read_p99_ms": round(self.read_p99_ms, 3),
            "stale_reads": self.stale_reads,
            "sheds": self.sheds,
            "killed_replica": self.killed_replica,
            "converged": self.converged,
            "verified": self.verified,
            "violations": self.violations,
        }


# -- cluster harnesses --------------------------------------------------------


class _InprocCluster:
    """Primary + replicas as threads inside this process."""

    def __init__(self, cfg: BenchNetConfig, spec: dict) -> None:
        self.cfg = cfg
        self.tenants = TenantManager()
        self.tenants.create(TenantConfig(name="default", spec=spec))
        self.primary = ThreadedServer(self.tenants, NetServerConfig(
            query_slots=cfg.query_slots, service_time=cfg.service_time,
        )).start()
        self.replicas: list[LogShippingReplica] = []
        self.replica_servers: list[ThreadedServer] = []
        self._stops: list[threading.Event] = []
        self._threads: list[threading.Thread] = []
        for _ in range(cfg.replicas):
            self.add_replica()

    @property
    def primary_addr(self) -> tuple[str, int]:
        return self.primary.host, self.primary.port

    def replica_addrs(self) -> list[tuple[str, int]]:
        return [(s.host, s.port) for s in self.replica_servers]

    def add_replica(self) -> None:
        replica, server = run_replica(
            self.primary.host, self.primary.port,
            listen=("127.0.0.1", 0),
            config=ReplicaConfig(poll_interval=0.005),
            query_slots=self.cfg.query_slots,
            service_time=self.cfg.service_time,
        )
        stop = threading.Event()
        thread = threading.Thread(
            target=replica.run, kwargs={"stop": stop}, daemon=True)
        thread.start()
        self.replicas.append(replica)
        self.replica_servers.append(server)
        self._stops.append(stop)
        self._threads.append(thread)

    def kill_replica(self, idx: int = 0) -> None:
        """Hard-stop one replica: poll loop and front end both die."""
        self._stops[idx].set()
        self._threads[idx].join(timeout=5)
        self.replica_servers[idx].stop()
        self.replicas[idx].close()
        del (self.replicas[idx], self.replica_servers[idx],
             self._stops[idx], self._threads[idx])

    def wait_converged(self, timeout: float) -> bool:
        with NetClient(*self.primary_addr) as c:
            primary_seq = c.flush()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if all(r.service.committed_seq == primary_seq and r.lag == 0
                   for r in self.replicas):
                return True
            time.sleep(0.01)
        return False

    def verify(self) -> list[str]:
        from repro.oracle import verify_replica

        violations: list[str] = []
        primary_service = self.tenants.get("default").service
        for i, replica in enumerate(self.replicas):
            result = verify_replica(primary_service, replica.service)
            violations += [f"replica {i}: {v}" for v in result.violations]
        return violations

    def close(self) -> None:
        for stop in self._stops:
            stop.set()
        for thread in self._threads:
            thread.join(timeout=5)
        for server in self.replica_servers:
            server.stop()
        for replica in self.replicas:
            replica.close()
        self.primary.stop()
        self.tenants.close()


class _SubprocCluster:
    """Primary + replicas as real ``repro.cli`` processes."""

    def __init__(self, cfg: BenchNetConfig, spec: dict) -> None:
        self.cfg = cfg
        self._spec = spec
        self.procs: list[subprocess.Popen] = []
        self._addrs: list[tuple[str, int]] = []
        # --seed cfg.seed+1 reproduces request_stream's initial graph
        # (it draws edges from gnm_random_graph at seed+1), so the write
        # stream stays sequentially legal against the subprocess primary
        serve_cmd = [
            "serve", "--listen", "127.0.0.1:0", "--shards", "1",
            "--backend", "spanner", "--n", str(spec["n"]),
            "--k", str(spec.get("k", 2)), "--m", str(cfg.m),
            "--seed", str(cfg.seed + 1),
            "--query-slots", str(cfg.query_slots),
            "--service-time-us", str(int(cfg.service_time * 1e6)),
        ]
        self._primary_proc, self.primary_addr = _spawn(serve_cmd)
        for _ in range(cfg.replicas):
            self.add_replica()

    def replica_addrs(self) -> list[tuple[str, int]]:
        return list(self._addrs)

    def add_replica(self) -> None:
        host, port = self.primary_addr
        proc, addr = _spawn([
            "replica", "--primary", f"{host}:{port}",
            "--listen", "127.0.0.1:0",
            "--query-slots", str(self.cfg.query_slots),
            "--service-time-us", str(int(self.cfg.service_time * 1e6)),
        ])
        self.procs.append(proc)
        self._addrs.append(addr)

    def kill_replica(self, idx: int = 0) -> None:
        self.procs[idx].kill()
        self.procs[idx].wait(timeout=10)
        del self.procs[idx], self._addrs[idx]

    def wait_converged(self, timeout: float) -> bool:
        with NetClient(*self.primary_addr) as c:
            primary_seq = c.flush()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                seqs = []
                for addr in self._addrs:
                    with NetClient(*addr) as rc:
                        seqs.append(rc.admin("stats")["committed_seq"])
                if all(s == primary_seq for s in seqs):
                    return True
            except (OSError, ProtocolError, ServerError):
                pass
            time.sleep(0.05)
        return False

    def verify(self) -> list[str]:
        """Wire-level equivalence: replica edge sets match the primary."""
        violations: list[str] = []
        with NetClient(*self.primary_addr) as c:
            primary_edges = c.edges()
            primary_seq = c.admin("stats")["committed_seq"]
        for i, addr in enumerate(self._addrs):
            with NetClient(*addr) as rc:
                r_edges = rc.edges()
                r_seq = rc.admin("stats")["committed_seq"]
            if r_seq != primary_seq:
                violations.append(
                    f"replica {i}: committed_seq {r_seq} != primary "
                    f"{primary_seq}")
            if r_edges != primary_edges:
                violations.append(
                    f"replica {i}: edge set differs from primary by "
                    f"{len(r_edges ^ primary_edges)} edge(s)")
        return violations

    def close(self) -> None:
        for proc in [*self.procs, self._primary_proc]:
            proc.terminate()
        for proc in [*self.procs, self._primary_proc]:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10)


def _spawn(cli_args: list[str],
           timeout: float = 30.0) -> tuple[subprocess.Popen, tuple[str, int]]:
    """Start a ``repro.cli`` serve-family process, wait for NET-LISTEN."""
    src_dir = str(Path(__file__).resolve().parents[2])
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *cli_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, bufsize=1, env=env,
    )
    timer = threading.Timer(timeout, proc.kill)
    timer.start()
    lines = []
    try:
        assert proc.stdout is not None
        for line in proc.stdout:
            lines.append(line.rstrip())
            if line.startswith("NET-LISTEN "):
                _, host, port = line.split()
                return proc, (host, int(port))
    finally:
        timer.cancel()
    raise RuntimeError(
        "server process exited before announcing its port:\n"
        + "\n".join(lines[-20:]))


# -- the drive ----------------------------------------------------------------


def run_bench_net(config: BenchNetConfig | None = None) -> BenchNetReport:
    """Run the replica-scaling benchmark; see module docstring."""
    cfg = config or BenchNetConfig()
    report = BenchNetReport(config=cfg)
    initial, reqs = request_stream(
        cfg.n, cfg.m, cfg.requests, seed=cfg.seed,
        query_prob=cfg.read_fraction,
    )
    writes = [(op, e) for op, e in reqs if op != "query"]
    reads = [e for op, e in reqs if op == "query"]
    spec = {"kind": "spanner", "n": cfg.n, "k": cfg.k,
            "edges": [list(e) for e in initial], "seed": cfg.seed}
    cluster_cls = _SubprocCluster if cfg.mode == "subprocess" \
        else _InprocCluster
    cluster = cluster_cls(cfg, spec)
    try:
        return _drive(cluster, cfg, report, writes, reads)
    finally:
        cluster.close()


def _drive(cluster, cfg: BenchNetConfig, report: BenchNetReport,
           writes, reads) -> BenchNetReport:
    read_addrs = cluster.replica_addrs() or [cluster.primary_addr]
    latencies: list[float] = []
    counters = {"sheds": 0, "stale": 0, "done": 0}
    lock = threading.Lock()
    dead_addrs: set = set()
    kill_at = len(reads) // 2 if cfg.kill_replica else None
    kill_fired = threading.Event()

    def writer() -> None:
        with NetClient(*cluster.primary_addr) as c:
            for op, (u, v) in writes:
                for _ in range(50):
                    try:
                        c.submit(op, u, v)
                        break
                    except ServerError as exc:
                        with lock:
                            counters["sheds"] += 1
                        time.sleep(min(exc.retry_after or 0.001, 0.05))

    def reader(idx: int, my_reads) -> None:
        clients: dict = {}
        try:
            for j, (u, v) in enumerate(my_reads):
                addr = _pick_addr(read_addrs, dead_addrs, idx + j)
                if addr is None:
                    return
                c = clients.get(addr)
                if c is None:
                    try:
                        c = clients[addr] = NetClient(*addr)
                    except OSError:
                        dead_addrs.add(addr)
                        continue
                t0 = time.perf_counter()
                try:
                    info = c.query_info("connected", (u, v))
                except ServerError as exc:
                    with lock:
                        counters["sheds"] += 1
                    time.sleep(min(exc.retry_after or 0.001, 0.05))
                    continue
                except (OSError, ProtocolError):
                    dead_addrs.add(addr)
                    clients.pop(addr, None)
                    continue
                dt = time.perf_counter() - t0
                with lock:
                    latencies.append(dt)
                    counters["done"] += 1
                    if info["stale"]:
                        counters["stale"] += 1
                    fire_kill = (kill_at is not None
                                 and counters["done"] >= kill_at
                                 and not kill_fired.is_set())
                if fire_kill:
                    kill_fired.set()
        finally:
            for c in clients.values():
                c.close()

    n_readers = max(2, 2 * max(1, cfg.replicas))
    shards = [reads[i::n_readers] for i in range(n_readers)]
    threads = [threading.Thread(target=writer, daemon=True)]
    threads += [
        threading.Thread(target=reader, args=(i, shard), daemon=True)
        for i, shard in enumerate(shards)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    if kill_at is not None:
        # kill from the coordinating thread so readers never block on it
        while any(t.is_alive() for t in threads[1:]) \
                and not kill_fired.wait(timeout=0.05):
            pass
        if kill_fired.is_set() and cluster.replica_addrs():
            victim = cluster.replica_addrs()[0]
            dead_addrs.add(victim)
            cluster.kill_replica(0)
            report.killed_replica = True
    for t in threads:
        t.join()
    report.elapsed_s = time.perf_counter() - t0

    report.reads = counters["done"]
    report.writes = len(writes)
    report.sheds = counters["sheds"]
    report.stale_reads = counters["stale"]
    if report.elapsed_s > 0:
        report.read_throughput_rps = report.reads / report.elapsed_s
    if latencies:
        latencies.sort()
        report.read_p50_ms = 1e3 * latencies[len(latencies) // 2]
        report.read_p99_ms = 1e3 * latencies[
            min(len(latencies) - 1, int(len(latencies) * 0.99))]

    if report.killed_replica:
        # a freshly bootstrapped replacement must converge to equivalence
        cluster.add_replica()
    report.converged = cluster.wait_converged(cfg.converge_timeout)
    if not report.converged:
        report.violations.append("replicas did not converge before timeout")
    else:
        report.violations.extend(str(v) for v in cluster.verify())
    report.verified = report.converged and not report.violations
    return report


def _pick_addr(addrs, dead, i):
    alive = [a for a in addrs if a not in dead]
    if not alive:
        return None
    return alive[i % len(alive)]

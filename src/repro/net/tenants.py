"""Multi-tenant graph namespaces for the net server.

Each tenant is a fully isolated serving stack: its own backend spec, its
own :class:`~repro.service.engine.SpannerService` (engine + coalescing
queue + batcher), its own WAL/checkpoint directory when durable, and its
own :class:`~repro.service.admission.AdmissionController` quotas — so one
tenant hitting its ``max_pending`` or ``max_inflight_queries`` sheds with
``retry_after`` while every other tenant keeps its latency.

Replication hooks: every commit is also appended (WAL-framed, via
:func:`repro.resilience.wal.encode_record`) to an in-memory
:class:`ReplicationLog`, the byte stream ``wal_fetch`` serves to read
replicas.  The log starts at the tenant's **boot state**: for a durable
tenant that resumed from checkpoint + WAL, the boot spec carries the
checkpointed edges and the log is pre-seeded with the recovered WAL tail,
so a replica bootstrapping from ``(boot_spec, base_seq)`` and applying the
shipped stream reconstructs the primary's live state exactly.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.resilience.manager import RecoveryManager, ResilienceConfig
from repro.resilience.wal import WAL_MAGIC, encode_record
from repro.service.admission import AdmissionConfig
from repro.service.batcher import BatcherConfig
from repro.service.engine import (
    LocalExecutor,
    ServiceConfig,
    SpannerService,
)
from repro.workloads.streams import UpdateBatch

__all__ = [
    "IdempotencyIndex",
    "ReplicationLog",
    "Tenant",
    "TenantConfig",
    "TenantManager",
]


class IdempotencyIndex:
    """Bounded ``key -> recorded submit outcome`` map for exactly-once
    write retries.

    A client retrying a ``submit`` whose ACK was lost replays the *same*
    client-generated key; the admission path claims the key **before**
    offering the op to the coalescing queue, so the retry is answered from
    the recorded outcome instead of re-applied.  Dedup must happen here,
    pre-queue: by the time the retry arrives the original op may already
    be committed, and the queue would then report ``rejected_duplicate``
    (insert of a present edge) — a lie to the client whose write in fact
    landed.

    Three-way protocol per key: :meth:`begin` claims it (``new``), replays
    it (``dup``), or reports a concurrent in-flight twin (``pending``);
    :meth:`commit` records the processed outcome; :meth:`abort` releases a
    claim whose op was *not* processed (sheds, internal errors) so a later
    retry is re-admitted.

    The index is in-memory and LRU-bounded (``capacity`` completed
    entries).  Durability is layered: across a primary restart the WAL
    replays committed batches, and the coalescing queue's membership
    validation (`rejected_duplicate`/`rejected_absent`) remains the
    backstop for keys the index no longer remembers — chaos verifies the
    end state by replaying the replication log (see
    :mod:`repro.resilience.chaos`).
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[str, dict | None] = OrderedDict()
        self._lock = threading.Lock()
        self.dedup_hits = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def begin(self, key: str) -> tuple[str, dict | None]:
        """Claim ``key``; returns ``("new", None)``, ``("dup", outcome)``,
        or ``("pending", None)``."""
        with self._lock:
            if key in self._entries:
                outcome = self._entries[key]
                if outcome is None:
                    return "pending", None
                self._entries.move_to_end(key)
                self.dedup_hits += 1
                return "dup", dict(outcome)
            self._entries[key] = None
            return "new", None

    def commit(self, key: str, outcome: dict) -> None:
        """Record the processed outcome for a claimed key."""
        with self._lock:
            self._entries[key] = dict(outcome)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                # evict oldest *completed* entry; in-flight claims stay
                for old_key, old_val in self._entries.items():
                    if old_val is not None:
                        del self._entries[old_key]
                        break
                else:  # pragma: no cover - all pending: nothing evictable
                    break

    def abort(self, key: str) -> None:
        """Release a claim whose op was not processed (idempotent)."""
        with self._lock:
            if self._entries.get(key, ()) is None:
                del self._entries[key]


class ReplicationLog:
    """Thread-safe, append-only WAL-framed byte stream for log shipping.

    Holds the same bytes a :class:`~repro.resilience.wal.WalWriter` would
    produce (magic + checksummed records), but in memory and never
    truncated by checkpoints, so a replica's byte offset stays valid for
    the primary process's whole lifetime.  ``base_seq`` is the commit seq
    the stream's *start* corresponds to (0 for a fresh tenant, the
    checkpoint epoch for a resumed one).
    """

    def __init__(self, base_seq: int = 0) -> None:
        self._buf = bytearray(WAL_MAGIC)
        self._lock = threading.Lock()
        self.base_seq = base_seq
        self.last_seq = base_seq

    @property
    def size(self) -> int:
        """Total stream bytes (the ``log_size`` replicas poll against)."""
        with self._lock:
            return len(self._buf)

    def append(self, seq: int, batch: UpdateBatch) -> None:
        """Append one committed batch (serving-engine commit hook)."""
        data = encode_record(seq, batch)
        with self._lock:
            if seq <= self.last_seq:
                raise ValueError(
                    f"replication log seq regression "
                    f"{self.last_seq} -> {seq}"
                )
            self._buf += data
            self.last_seq = seq

    def read(self, offset: int, max_bytes: int) -> bytes:
        """Stream bytes ``[offset, offset + max_bytes)``.

        A chunk boundary may tear a record in half; the replica's
        :class:`~repro.resilience.wal.WalStreamDecoder` buffers the torn
        tail and completes it from the next fetch — the same rule the WAL
        reader applies to a crash-torn file tail.
        """
        if offset < 0:
            raise ValueError(f"negative replication offset {offset}")
        with self._lock:
            return bytes(self._buf[offset: offset + max(0, max_bytes)])


@dataclass
class TenantConfig:
    """One tenant's backend, serving knobs, quotas, and durability."""

    name: str
    spec: dict[str, Any]                 # build_backend spec
    shards: int = 1                      # >1 = in-process ShardedExecutor
    batcher: BatcherConfig = field(default_factory=BatcherConfig)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    wal_dir: str | None = None           # durable when set
    checkpoint_interval: int = 64
    autostart: bool = True               # run the background flusher


class Tenant:
    """A named namespace: one engine plus its replication stream."""

    def __init__(self, config: TenantConfig, service: SpannerService,
                 boot_spec: dict[str, Any],
                 replication: ReplicationLog) -> None:
        self.config = config
        self.service = service
        self.boot_spec = boot_spec       # spec the executor was built on
        self.replication = replication
        self.inflight_queries = 0        # maintained by the net server
        self.idempotency = IdempotencyIndex()
        service.commit_hooks.append(replication.append)

    @property
    def name(self) -> str:
        return self.config.name

    def sync_info(self) -> dict[str, Any]:
        """Bootstrap description a replica needs (JSON-serializable)."""
        spec = dict(self.boot_spec)
        spec["edges"] = sorted([int(u), int(v)] for u, v in
                               spec.get("edges", ()))
        return {
            "spec": spec,
            "shards": self.config.shards,
            "base_seq": self.replication.base_seq,
            "last_seq": self.replication.last_seq,
            "log_size": self.replication.size,
        }

    def close(self) -> None:
        """Shut the tenant down: stop the engine, close the WAL."""
        self.service.close()


class TenantManager:
    """Creates, routes, and tears down tenants for one server process."""

    def __init__(self) -> None:
        self._tenants: dict[str, Tenant] = {}
        self._lock = threading.Lock()

    def names(self) -> list[str]:
        """Sorted tenant names."""
        with self._lock:
            return sorted(self._tenants)

    def get(self, name: str) -> Tenant | None:
        """Look a tenant up by name (``None`` if absent)."""
        with self._lock:
            return self._tenants.get(name)

    def __iter__(self) -> Iterable[Tenant]:
        with self._lock:
            return iter(list(self._tenants.values()))

    def create(self, config: TenantConfig) -> Tenant:
        """Build a tenant's full serving stack and register it.

        Durable tenants (``wal_dir`` set) recover checkpoint + WAL first;
        the recovered tail is replayed into the executor *and* pre-seeded
        into the replication log so late-joining replicas can still
        reconstruct the live state.
        """
        with self._lock:
            if config.name in self._tenants:
                raise ValueError(f"duplicate tenant {config.name!r}")
        recovery = None
        boot_spec = dict(config.spec)
        base_seq = 0
        tail = []
        if config.wal_dir:
            recovery = RecoveryManager(ResilienceConfig(
                directory=Path(config.wal_dir),
                checkpoint_interval=config.checkpoint_interval,
            ))
            initial = [tuple(e) for e in config.spec.get("edges", ())]
            base: set = set()
            for i in range(config.shards):
                base |= recovery.base_edges(i, config.shards, initial)
            boot_spec["edges"] = sorted(base)
            base_seq = recovery.checkpoint.epoch if recovery.checkpoint \
                else 0
            tail = list(recovery.tail)
        executor = _build_executor(boot_spec, config.shards)
        for rec in tail:
            executor.apply(rec.batch, seq=rec.seq)
        service = SpannerService(
            executor,
            config=ServiceConfig(
                batcher=replace(config.batcher),
                admission=replace(config.admission),
            ),
            recovery=recovery,
        )
        replication = ReplicationLog(base_seq=base_seq)
        for rec in tail:
            replication.append(rec.seq, rec.batch)
        tenant = Tenant(config, service, boot_spec, replication)
        if config.autostart:
            service.start()
        with self._lock:
            self._tenants[config.name] = tenant
        return tenant

    def add_replica_tenant(self, name: str, spec: dict[str, Any],
                           shards: int, base_seq: int) -> Tenant:
        """Register a *replica* tenant: an engine built from a primary's
        ``sync_info`` and fed only by :meth:`SpannerService.apply_replicated`
        (no flusher, no local writes, no durability)."""
        config = TenantConfig(name=name, spec=spec, shards=shards,
                              autostart=False)
        executor = _build_executor(dict(spec), shards)
        service = SpannerService(executor, config=ServiceConfig())
        if base_seq:
            service.align_seq(base_seq)
        tenant = Tenant(config, service, dict(spec), ReplicationLog(base_seq))
        with self._lock:
            self._tenants[name] = tenant
        return tenant

    def flush_all(self) -> None:
        """Flush every tenant's pending writes (drain path)."""
        for tenant in list(self):
            tenant.service.flush()

    def render_prometheus(self,
                          extra: Callable[[], str] | None = None) -> str:
        """One scrape body covering every tenant, labelled per tenant."""
        parts = [
            t.service.metrics.render_prometheus(labels={"tenant": t.name})
            for t in sorted(self, key=lambda t: t.name)
        ]
        if extra is not None:
            parts.append(extra())
        return "".join(parts)

    def close(self) -> None:
        """Close every tenant; idempotent."""
        """Flush, checkpoint, and shut every tenant down (idempotent)."""
        with self._lock:
            tenants, self._tenants = list(self._tenants.values()), {}
        for tenant in tenants:
            tenant.close()

    def __enter__(self) -> "TenantManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _build_executor(spec: dict[str, Any], shards: int):
    """LocalExecutor for one shard, in-process ShardedExecutor beyond.

    In-process shards keep tenancy deterministic and fork-free; the
    process-per-shard executor stays available to single-tenant serving
    via ``repro.cli serve`` (without ``--listen``).
    """
    if shards <= 1:
        return LocalExecutor(spec)
    from repro.service.shard import ShardedExecutor

    return ShardedExecutor(spec, shards, processes=False)

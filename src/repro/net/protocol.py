"""Wire protocol for the networked serving layer (``repro.net``).

Length-prefixed JSON frames over a byte stream::

    frame    [u32 length, little-endian][payload]
    payload  UTF-8 JSON object

Every request carries a client-chosen ``id`` and a ``verb``; every
response echoes the ``id`` and is either an OK envelope (``ok: true`` plus
verb-specific fields) or an **error envelope**::

    {"id": 7, "ok": false,
     "error": {"code": "shed", "message": "...", "retry_after": 0.008}}

``retry_after`` and ``stale`` ride inside the envelope unchanged from the
engine's :class:`~repro.service.engine.SubmitResponse` /
:class:`~repro.service.engine.QueryResult`, so backpressure and
degraded-mode semantics survive the wire intact.

The first frame on a connection must be the **version handshake**: a
``hello`` request naming the protocol (:data:`PROTOCOL_NAME`), its
version, and the tenant the client intends to talk to.  The server
replies with its own version and tenant catalogue, or an error envelope
(``version_mismatch`` / ``unknown_tenant``) and closes.

Binary payloads (shipped WAL segments) are base64-armoured strings inside
JSON — see :func:`encode_chunk` / :func:`decode_chunk`.
"""

from __future__ import annotations

import base64
import json
import struct

__all__ = [
    "ConnectionClosed",
    "FrameDecoder",
    "MAX_FRAME_BYTES",
    "PROTOCOL_NAME",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServerError",
    "decode_chunk",
    "encode_chunk",
    "encode_frame",
    "error_envelope",
    "hello_frame",
    "ok_envelope",
    "request_frame",
]

PROTOCOL_NAME = "repro-net"
PROTOCOL_VERSION = 1
MAX_FRAME_BYTES = 8 * 1024 * 1024

_LEN = struct.Struct("<I")


class ProtocolError(RuntimeError):
    """A frame violated the wire format (oversize, truncated, non-JSON)."""


class ConnectionClosed(ConnectionError):
    """The connection is gone (peer closed, reset, timed out, or poisoned).

    Raised by :class:`~repro.net.client.NetClient` both at the moment a
    transport/framing failure kills a call *and* on every call after it:
    once a response stream desyncs (half-read frame, unknown response id)
    the socket cannot be trusted for another request/response exchange, so
    the client latches closed rather than mis-pairing replies.  Retry by
    reconnecting — :class:`~repro.net.resilient.ResilientClient` does this
    automatically with handshake replay and idempotency keys.
    """


class ServerError(RuntimeError):
    """A decoded error envelope, raised client-side.

    Carries the envelope's ``code`` plus the optional ``retry_after`` and
    ``stale`` fields so callers can implement backoff without re-parsing.
    """

    def __init__(self, code: str, message: str,
                 retry_after: float | None = None,
                 stale: bool | None = None) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.retry_after = retry_after
        self.stale = stale

    @classmethod
    def from_envelope(cls, msg: dict) -> "ServerError":
        err = msg.get("error") or {}
        return cls(
            err.get("code", "unknown"),
            err.get("message", "(no message)"),
            retry_after=err.get("retry_after"),
            stale=err.get("stale"),
        )


def encode_frame(msg: dict, max_frame: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one message as a length-prefixed JSON frame."""
    payload = json.dumps(
        msg, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    if len(payload) > max_frame:
        raise ProtocolError(
            f"frame payload is {len(payload)} bytes, cap is {max_frame}"
        )
    return _LEN.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental frame parser: feed socket bytes, collect messages.

    Mirrors :class:`repro.resilience.wal.WalStreamDecoder` for the control
    plane: arbitrary chunking is fine, partial frames are buffered, and an
    oversize declared length is rejected *before* buffering it (a broken
    or hostile peer cannot balloon server memory).
    """

    def __init__(self, max_frame: int = MAX_FRAME_BYTES) -> None:
        self._buf = bytearray()
        self.max_frame = max_frame

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)

    def feed(self, data: bytes) -> list[dict]:
        """Consume ``data``; return every message it completed, in order."""
        self._buf += data
        out: list[dict] = []
        while True:
            if len(self._buf) < _LEN.size:
                return out
            (length,) = _LEN.unpack_from(self._buf, 0)
            if length > self.max_frame:
                raise ProtocolError(
                    f"declared frame length {length} exceeds cap "
                    f"{self.max_frame}"
                )
            end = _LEN.size + length
            if len(self._buf) < end:
                return out
            payload = bytes(self._buf[_LEN.size: end])
            del self._buf[:end]
            try:
                msg = json.loads(payload.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(f"undecodable frame payload: {exc}") \
                    from exc
            if not isinstance(msg, dict):
                raise ProtocolError(
                    f"frame payload must be a JSON object, got "
                    f"{type(msg).__name__}"
                )
            out.append(msg)


# -- message builders ---------------------------------------------------------


def request_frame(req_id: int, verb: str, **params) -> dict:
    """A client request message."""
    return {"id": req_id, "verb": verb, **params}


def hello_frame(req_id: int = 0, tenant: str = "default") -> dict:
    """The handshake request every connection must open with."""
    return request_frame(
        req_id, "hello",
        protocol=PROTOCOL_NAME, version=PROTOCOL_VERSION, tenant=tenant,
    )


def ok_envelope(req_id, **fields) -> dict:
    """A success response echoing the request id."""
    return {"id": req_id, "ok": True, **fields}


def error_envelope(req_id, code: str, message: str,
                   retry_after: float | None = None,
                   stale: bool | None = None) -> dict:
    """An error response; ``retry_after``/``stale`` surface backpressure
    and degraded-mode hints unchanged from the engine."""
    err: dict = {"code": code, "message": message}
    if retry_after is not None:
        err["retry_after"] = retry_after
    if stale is not None:
        err["stale"] = stale
    return {"id": req_id, "ok": False, "error": err}


# -- binary chunks ------------------------------------------------------------


def encode_chunk(data: bytes) -> str:
    """Armour a binary WAL segment for a JSON frame."""
    return base64.b64encode(data).decode("ascii")


def decode_chunk(text: str) -> bytes:
    """Inverse of :func:`encode_chunk`."""
    return base64.b64decode(text.encode("ascii"))

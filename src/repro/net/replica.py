"""Log-shipping read replicas.

A replica bootstraps from the primary's ``sync`` verb (boot spec, shard
count, base commit seq), builds an identical engine, and then tails the
primary's replication log over ``wal_fetch``: WAL-framed bytes, decoded
incrementally by :class:`~repro.resilience.wal.WalStreamDecoder` (a chunk
boundary may tear a record; torn tails are buffered and completed by the
next fetch, the same rule crash recovery applies to the WAL file).

Because every structure is seeded Las Vegas, a replica that applies the
primary's exact batch sequence from the same base spec reaches **bit-
identical** state — ``oracle.verify_replica`` asserts exactly that, and
the chaos harness re-asserts it after crash/lag faults.

Consistency contract served to clients: *snapshot-consistent, possibly
stale*.  Every applied batch is atomic (a query sees all of commit ``s``
or none of it) and ``as_of_seq`` names the commit the answer reflects.
While the replica knows it is behind (``lag > 0``) it raises the engine's
degraded marker, so reads come back ``stale=True`` through the exact
path shard-recovery degradation uses on the primary.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.net.client import NetClient
from repro.net.server import NetServerConfig, ThreadedServer
from repro.net.tenants import Tenant, TenantManager
from repro.resilience.wal import WalStreamDecoder

__all__ = ["LogShippingReplica", "ReplicaConfig", "run_replica"]


@dataclass
class ReplicaConfig:
    tenant: str = "default"
    poll_interval: float = 0.02     # seconds between wal_fetch polls
    chunk_bytes: int = 1 << 20      # max bytes per fetch
    lag_stale_threshold: int = 1    # commits behind before reads tag stale


@dataclass
class ReplicaStats:
    records_applied: int = 0
    bytes_fetched: int = 0
    fetches: int = 0
    last_applied_seq: int = 0
    lag_commits: int = 0            # primary last_seq - replica seq
    bootstrap_seconds: float = 0.0


class LogShippingReplica:
    """One tenant's read replica: engine + shipping cursor + lag gauge."""

    def __init__(self, client: NetClient,
                 config: ReplicaConfig | None = None,
                 tenants: TenantManager | None = None) -> None:
        self.client = client
        self.config = config or ReplicaConfig()
        self.tenants = tenants if tenants is not None else TenantManager()
        self.stats = ReplicaStats()
        t0 = time.perf_counter()
        info = client.sync_info()
        self.tenant: Tenant = self.tenants.add_replica_tenant(
            self.config.tenant,
            {**info["spec"],
             "edges": [tuple(e) for e in info["spec"]["edges"]]},
            int(info["shards"]), int(info["base_seq"]),
        )
        self._decoder = WalStreamDecoder()
        self._pending_records: list = []  # decoded, not yet applied
        self._offset = 0            # replication-log byte cursor
        self._primary_seq = int(info["last_seq"])
        self.stats.last_applied_seq = int(info["base_seq"])
        self._refresh_lag()
        self.stats.bootstrap_seconds = time.perf_counter() - t0

    @property
    def service(self):
        return self.tenant.service

    @property
    def lag(self) -> int:
        """Commits the replica is known to be behind the primary."""
        return self.stats.lag_commits

    def note_primary_seq(self, seq: int) -> None:
        """Record the primary's latest commit seq (from a fetch reply or
        an out-of-band source) and re-derive the lag gauge + stale tag."""
        self._primary_seq = max(self._primary_seq, seq)
        self._refresh_lag()

    def _refresh_lag(self) -> None:
        lag = max(0, self._primary_seq - self.service.committed_seq)
        self.stats.lag_commits = lag
        self.service.metrics.gauge("replica_lag_commits").set(lag)
        self.service.set_degraded(
            lag >= self.config.lag_stale_threshold)

    def catch_up(self, max_records: int | None = None) -> int:
        """Fetch + apply until caught up (or ``max_records`` applied).

        Returns the number of records applied.  Safe to call repeatedly;
        the decoder carries torn fetch tails across calls.
        """
        applied = 0
        while True:
            # drain records decoded on an earlier (capped) call first, so
            # a record is never lost between the decoder and the engine
            while self._pending_records and (
                    max_records is None or applied < max_records):
                rec = self._pending_records.pop(0)
                self.service.apply_replicated(rec.seq, rec.batch)
                self.stats.records_applied += 1
                self.stats.last_applied_seq = rec.seq
                applied += 1
            self._refresh_lag()
            if max_records is not None and applied >= max_records:
                break
            chunk, _log_size, last_seq = self.client.wal_fetch(
                self._offset + self._decoder.pending_bytes,
                self.config.chunk_bytes)
            self.stats.fetches += 1
            self.stats.bytes_fetched += len(chunk)
            self.note_primary_seq(last_seq)
            if not chunk:
                break
            self._pending_records.extend(self._decoder.feed(chunk))
            self._offset = self._decoder.offset
        self._refresh_lag()
        return applied

    def run(self, stop=None, max_seconds: float | None = None) -> None:
        """Poll-and-apply loop: ``catch_up`` then sleep ``poll_interval``.

        ``stop`` is an optional ``threading.Event``; the loop also exits
        after ``max_seconds`` when given (used by ``repro.cli replica``).
        """
        deadline = (time.monotonic() + max_seconds) \
            if max_seconds is not None else None
        while True:
            if stop is not None and stop.is_set():
                return
            if deadline is not None and time.monotonic() >= deadline:
                return
            if self.catch_up() == 0:
                time.sleep(self.config.poll_interval)

    def close(self) -> None:
        """Stop shipping and close the upstream connection; idempotent."""
        self.tenants.close()
        self.client.close()


def run_replica(primary_host: str, primary_port: int,
                listen: tuple[str, int] | None = None,
                config: ReplicaConfig | None = None,
                query_slots: int = 8, service_time: float = 0.0,
                ) -> tuple[LogShippingReplica, ThreadedServer | None]:
    """Wire up a replica, optionally serving reads on its own port.

    Returns ``(replica, server)``; the caller owns the poll loop (call
    ``replica.run(...)`` or ``replica.catch_up()`` as it sees fit) and
    must ``server.stop()`` / ``replica.close()`` when done.  The serving
    front end is ``read_only=True``: submits are rejected with a
    ``read_only`` error envelope pointing clients at the primary.
    """
    client = NetClient(primary_host, primary_port,
                       tenant=(config or ReplicaConfig()).tenant)
    replica = LogShippingReplica(client, config)
    server = None
    if listen is not None:
        server = ThreadedServer(replica.tenants, NetServerConfig(
            host=listen[0], port=listen[1], read_only=True,
            query_slots=query_slots, service_time=service_time,
        )).start()
    return replica, server

"""Asyncio TCP front end over :class:`~repro.service.engine.SpannerService`.

One server process hosts a :class:`~repro.net.tenants.TenantManager`; each
accepted connection handshakes onto a tenant (see
:mod:`repro.net.protocol`) and then speaks request/response frames:

==============  =============================================================
verb            semantics
==============  =============================================================
``hello``       version handshake + tenant binding (must be frame #1)
``submit``      one edge update → engine ``submit_update`` (sheds surface
                as ``shed`` / ``shed_degraded`` error envelopes with
                ``retry_after``)
``query``       read (``size``/``edges``/``contains``/``distance``/
                ``connected``); response carries ``stale`` + ``as_of_seq``
``query_info``  alias of ``query`` (kept distinct for wire-log clarity)
``query_batch``  many reads in one frame → engine ``query_batch``; the
                 batch is answered from one snapshot via shared
                 traversals (one admission charge, one ``service_time``
                 charge for the whole batch); response carries
                 positionally-aligned ``values`` plus one ``stale`` /
                 ``as_of_seq`` pair and dedup stats
``metrics``     Prometheus text exposition for the bound tenant (or every
                tenant with ``all: true``)
``admin``       ``flush`` / ``tenants`` / ``stats`` / ``drain``
``sync``        replica bootstrap info (boot spec, shards, base_seq)
``wal_fetch``   a chunk of the tenant's replication log from a byte offset
==============  =============================================================

Backpressure is per connection: requests on one connection are handled
strictly sequentially and every response is ``await writer.drain()``-ed, so
a slow reader throttles only itself.  Query admission is per tenant
(``AdmissionConfig.max_inflight_queries``), and query *execution* holds a
server-wide slot semaphore for ``service_time`` seconds when a simulated
per-query cost is configured (the capacity model the net benchmarks pin).

``drain()`` — wired to SIGTERM by :func:`serve` — stops the listener,
lets in-flight connections finish (up to ``drain_timeout``), then flushes
and checkpoints every tenant before returning.
"""

from __future__ import annotations

import asyncio
import contextlib
import math
import signal
import threading
from dataclasses import dataclass

from repro.net.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_NAME,
    PROTOCOL_VERSION,
    FrameDecoder,
    ProtocolError,
    encode_chunk,
    encode_frame,
    error_envelope,
    ok_envelope,
)
from repro.net.tenants import Tenant, TenantManager

__all__ = ["NetServer", "NetServerConfig", "ThreadedServer", "serve"]


@dataclass
class NetServerConfig:
    host: str = "127.0.0.1"
    port: int = 0                   # 0 = ephemeral (bound port on .port)
    max_frame: int = MAX_FRAME_BYTES
    read_only: bool = False         # replica front end: reject writes
    query_slots: int = 8            # server-wide concurrent query capacity
    service_time: float = 0.0       # simulated per-query engine seconds
    drain_timeout: float = 5.0      # seconds to wait out live connections
    max_chunk_bytes: int = 1 << 20  # wal_fetch reply cap (pre-base64)
    # a client that starts a frame must finish it within read_deadline or
    # the connection is evicted (a stalled half-frame pins server state);
    # idle_timeout bounds the wait *between* frames (None = keep-alive
    # forever); write_deadline evicts readers too slow to drain responses
    read_deadline: float | None = 30.0
    idle_timeout: float | None = None
    write_deadline: float | None = 30.0


class NetServer:
    """The asyncio server; create, ``await start()``, then ``drain()``."""

    def __init__(self, tenants: TenantManager,
                 config: NetServerConfig | None = None) -> None:
        self.tenants = tenants
        self.config = config or NetServerConfig()
        self.host: str | None = None
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._conns: set[asyncio.Task] = set()
        self._draining = False
        self._slots: asyncio.Semaphore | None = None
        self.connections_served = 0
        self.requests_served = 0
        self.evictions = {"mid_frame": 0, "idle": 0, "slow_reader": 0}

    async def start(self) -> None:
        """Bind the listener and record the resolved host/port."""
        cfg = self.config
        self._slots = asyncio.Semaphore(max(1, cfg.query_slots))
        self._server = await asyncio.start_server(
            self._on_connection, host=cfg.host, port=cfg.port
        )
        sock = self._server.sockets[0].getsockname()
        self.host, self.port = sock[0], sock[1]

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, finish in-flight, flush."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._conns:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(
                    asyncio.gather(*self._conns, return_exceptions=True),
                    timeout=self.config.drain_timeout,
                )
            for task in self._conns:
                task.cancel()
        await asyncio.to_thread(self.tenants.flush_all)

    # -- connection lifecycle -------------------------------------------------

    def _on_connection(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
        task = asyncio.ensure_future(self._serve_connection(reader, writer))
        self._conns.add(task)
        task.add_done_callback(self._conns.discard)

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        self.connections_served += 1
        decoder = FrameDecoder(self.config.max_frame)
        tenant: Tenant | None = None
        cfg = self.config
        try:
            while not (self._draining and decoder.pending_bytes == 0):
                # per-connection read deadline: mid-frame stalls are
                # bounded by read_deadline, idle keep-alive by idle_timeout
                timeout = (cfg.read_deadline if decoder.pending_bytes
                           else cfg.idle_timeout)
                try:
                    if timeout is None:
                        data = await reader.read(65536)
                    else:
                        data = await asyncio.wait_for(
                            reader.read(65536), timeout=timeout)
                except asyncio.TimeoutError:
                    self.evictions[
                        "mid_frame" if decoder.pending_bytes else "idle"
                    ] += 1
                    break
                if not data:
                    break
                try:
                    msgs = decoder.feed(data)
                except ProtocolError as exc:
                    await self._send(writer, error_envelope(
                        None, "protocol", str(exc)))
                    break
                for msg in msgs:
                    self.requests_served += 1
                    if tenant is None:
                        reply, tenant = self._handshake(msg)
                        await self._send(writer, reply)
                        if tenant is None:
                            return
                        continue
                    reply = await self._dispatch(tenant, msg)
                    await self._send(writer, reply)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _send(self, writer: asyncio.StreamWriter, msg: dict) -> None:
        writer.write(encode_frame(msg, self.config.max_frame))
        deadline = self.config.write_deadline
        if deadline is None:
            await writer.drain()
            return
        try:
            await asyncio.wait_for(writer.drain(), timeout=deadline)
        except asyncio.TimeoutError:
            # slow-client eviction: a reader that cannot drain its own
            # responses must not pin server buffers
            self.evictions["slow_reader"] += 1
            raise ConnectionResetError("slow client evicted") from None

    # -- verbs ----------------------------------------------------------------

    def _handshake(self, msg: dict) -> tuple[dict, Tenant | None]:
        req_id = msg.get("id")
        if msg.get("verb") != "hello":
            return error_envelope(
                req_id, "handshake_required",
                "first frame must be a hello"), None
        if msg.get("protocol") != PROTOCOL_NAME or \
                msg.get("version") != PROTOCOL_VERSION:
            return error_envelope(
                req_id, "version_mismatch",
                f"server speaks {PROTOCOL_NAME}/{PROTOCOL_VERSION}, client "
                f"offered {msg.get('protocol')}/{msg.get('version')}"), None
        name = msg.get("tenant", "default")
        tenant = self.tenants.get(name)
        if tenant is None:
            return error_envelope(
                req_id, "unknown_tenant",
                f"no tenant {name!r}; available: "
                f"{self.tenants.names()}"), None
        return ok_envelope(
            req_id, protocol=PROTOCOL_NAME, version=PROTOCOL_VERSION,
            tenant=name, read_only=self.config.read_only,
            tenants=self.tenants.names(),
        ), tenant

    async def _dispatch(self, tenant: Tenant, msg: dict) -> dict:
        req_id = msg.get("id")
        verb = msg.get("verb")
        try:
            if verb == "submit":
                return await self._do_submit(tenant, req_id, msg)
            if verb in ("query", "query_info"):
                return await self._do_query(tenant, req_id, msg)
            if verb == "query_batch":
                return await self._do_query_batch(tenant, req_id, msg)
            if verb == "metrics":
                return self._do_metrics(tenant, req_id, msg)
            if verb == "admin":
                return await self._do_admin(tenant, req_id, msg)
            if verb == "sync":
                return ok_envelope(req_id, **tenant.sync_info())
            if verb == "wal_fetch":
                return self._do_wal_fetch(tenant, req_id, msg)
            return error_envelope(req_id, "unknown_verb",
                                  f"unknown verb {verb!r}")
        except (KeyError, TypeError, ValueError) as exc:
            return error_envelope(req_id, "bad_request",
                                  f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # engine/executor failure: keep serving
            return error_envelope(req_id, "internal",
                                  f"{type(exc).__name__}: {exc}")

    async def _do_submit(self, tenant: Tenant, req_id, msg: dict) -> dict:
        if self.config.read_only:
            return error_envelope(
                req_id, "read_only",
                "this server is a read replica; submit updates to the "
                "primary")
        op, u, v = msg["op"], int(msg["u"]), int(msg["v"])
        key = msg.get("idem")
        if key is not None:
            key = str(key)
            claim, outcome = tenant.idempotency.begin(key)
            if claim == "dup":
                # retried submit after a lost ACK: answer from the record,
                # do NOT re-offer — the original may already be committed
                tenant.service.metrics.counter(
                    "idempotent_dedup_hits").inc()
                assert outcome is not None
                return ok_envelope(req_id, deduped=True, **outcome)
            if claim == "pending":
                # a concurrent twin (retry racing its original): tell the
                # client to come back once the original resolves
                return error_envelope(
                    req_id, "idem_in_flight",
                    f"idempotency key {key!r} is being processed",
                    retry_after=tenant.service.admission.config.
                    min_retry_after)
        try:
            resp = await asyncio.to_thread(
                tenant.service.submit_update, op, u, v)
        except BaseException:
            if key is not None:
                tenant.idempotency.abort(key)
            raise
        if not resp.accepted:
            # the op was not processed; release the claim so a retry with
            # the same key is re-admitted rather than replayed as "shed"
            if key is not None:
                tenant.idempotency.abort(key)
            return error_envelope(req_id, resp.outcome,
                                  "update shed by admission control",
                                  retry_after=resp.retry_after)
        if key is not None:
            tenant.idempotency.commit(key, {"status": resp.outcome})
        return ok_envelope(req_id, status=resp.outcome)

    async def _do_query(self, tenant: Tenant, req_id, msg: dict) -> dict:
        cfg = self.config
        decision = tenant.service.admission.admit_query(
            tenant.inflight_queries, cfg.service_time)
        if not decision.admitted:
            tenant.service.metrics.counter("query_shed").inc()
            return error_envelope(req_id, "shed_query",
                                  "tenant read quota exhausted",
                                  retry_after=decision.retry_after)
        kind = msg["kind"]
        payload = msg.get("payload")
        if isinstance(payload, list):
            payload = tuple(payload)
        tenant.inflight_queries += 1
        try:
            assert self._slots is not None
            async with self._slots:
                if cfg.service_time > 0:
                    # pinned per-query engine cost: the capacity model the
                    # replica-scaling benchmark measures against
                    await asyncio.sleep(cfg.service_time)
                result = tenant.service.query_info(
                    kind, payload, msg.get("consistency", "snapshot"))
        finally:
            tenant.inflight_queries -= 1
        return ok_envelope(
            req_id, value=_jsonable(result.value), stale=result.stale,
            as_of_seq=result.as_of_seq)

    async def _do_query_batch(self, tenant: Tenant, req_id,
                              msg: dict) -> dict:
        cfg = self.config
        # one admission charge and one service_time charge per batch —
        # that amortization is the whole point of batching reads
        decision = tenant.service.admission.admit_query(
            tenant.inflight_queries, cfg.service_time)
        if not decision.admitted:
            tenant.service.metrics.counter("query_shed").inc()
            return error_envelope(req_id, "shed_query",
                                  "tenant read quota exhausted",
                                  retry_after=decision.retry_after)
        items = []
        for entry in msg["items"]:
            kind = entry[0]
            payload = entry[1] if len(entry) > 1 else None
            if isinstance(payload, list):
                payload = tuple(payload)
            items.append((kind, payload))
        tenant.inflight_queries += 1
        try:
            assert self._slots is not None
            async with self._slots:
                if cfg.service_time > 0:
                    await asyncio.sleep(cfg.service_time)
                results = tenant.service.query_batch(
                    items, msg.get("consistency", "snapshot"))
        finally:
            tenant.inflight_queries -= 1
        stats = tenant.service.last_query_stats
        return ok_envelope(
            req_id,
            values=[_jsonable(r.value) for r in results],
            stale=bool(results and results[0].stale),
            as_of_seq=(results[0].as_of_seq if results
                       else tenant.service.committed_seq),
            unique=stats.unique if stats else 0,
            deduped=(stats.queries - stats.unique) if stats else 0,
        )

    def _do_metrics(self, tenant: Tenant, req_id, msg: dict) -> dict:
        if msg.get("all"):
            text = self.tenants.render_prometheus(extra=self._own_metrics)
        else:
            text = tenant.service.metrics.render_prometheus(
                labels={"tenant": tenant.name}) + self._own_metrics()
        return ok_envelope(req_id, text=text)

    def _own_metrics(self) -> str:
        eviction_lines = "".join(
            f'repro_net_evictions{{reason="{reason}"}} '
            f"{self.evictions[reason]}\n"
            for reason in sorted(self.evictions)
        )
        return (
            "# TYPE repro_net_connections_served counter\n"
            f"repro_net_connections_served {self.connections_served}\n"
            "# TYPE repro_net_requests_served counter\n"
            f"repro_net_requests_served {self.requests_served}\n"
            "# TYPE repro_net_evictions counter\n"
            f"{eviction_lines}"
        )

    async def _do_admin(self, tenant: Tenant, req_id, msg: dict) -> dict:
        action = msg.get("action", "stats")
        if action == "flush":
            result = await asyncio.to_thread(tenant.service.flush)
            return ok_envelope(
                req_id, flushed=result.batch.size if result else 0,
                committed_seq=tenant.service.committed_seq)
        if action == "tenants":
            return ok_envelope(req_id, tenants=self.tenants.names())
        if action == "stats":
            svc = tenant.service
            return ok_envelope(
                req_id,
                committed_seq=svc.committed_seq,
                snapshot_size=len(svc.snapshot_edges()),
                queue_depth=svc.queue.depth,
                degraded=svc._degraded.is_set(),
                replication_last_seq=tenant.replication.last_seq,
                replication_log_size=tenant.replication.size,
            )
        if action == "drain":
            asyncio.ensure_future(self.drain())
            return ok_envelope(req_id, draining=True)
        return error_envelope(req_id, "bad_request",
                              f"unknown admin action {action!r}")

    def _do_wal_fetch(self, tenant: Tenant, req_id, msg: dict) -> dict:
        offset = int(msg.get("offset", 0))
        max_bytes = min(int(msg.get("max_bytes", self.config.max_chunk_bytes)),
                        self.config.max_chunk_bytes)
        data = tenant.replication.read(offset, max_bytes)
        return ok_envelope(
            req_id, chunk=encode_chunk(data), offset=offset,
            log_size=tenant.replication.size,
            last_seq=tenant.replication.last_seq,
        )


def _jsonable(value):
    """Engine query values → JSON-clean types (edge sets, infinities)."""
    if isinstance(value, (set, frozenset)):
        return sorted([int(u), int(v)] for u, v in value)
    if isinstance(value, float) and math.isinf(value):
        return "inf"
    return value


# -- embedding helpers --------------------------------------------------------


class ThreadedServer:
    """A :class:`NetServer` running its own event loop in a thread.

    The embedding used by tests, the in-process benchmark harness, and the
    replica runner: ``start()`` blocks until the port is bound; ``stop()``
    drains gracefully and joins the loop thread.
    """

    def __init__(self, tenants: TenantManager,
                 config: NetServerConfig | None = None) -> None:
        self.server = NetServer(tenants, config)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="repro-net-server", daemon=True)
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    @property
    def host(self) -> str:
        return self.server.host or self.server.config.host

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    def start(self) -> "ThreadedServer":
        """Start the server loop in a daemon thread; blocks until bound."""
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(
                self._loop.shutdown_asyncgens())
            self._loop.close()

    def stop(self) -> None:
        """Drain the server and stop the loop thread; idempotent."""
        if not self._thread.is_alive():
            return
        fut = asyncio.run_coroutine_threadsafe(self.server.drain(),
                                               self._loop)
        with contextlib.suppress(Exception):
            fut.result(timeout=self.server.config.drain_timeout + 5)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)

    def __enter__(self) -> "ThreadedServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


async def serve(tenants: TenantManager,
                config: NetServerConfig | None = None,
                announce=None,
                install_signal_handlers: bool = True) -> NetServer:
    """Run a server until SIGTERM/SIGINT, then drain; the CLI entry point.

    ``announce(host, port)`` is called once the port is bound (the CLI
    prints ``NET-LISTEN host port`` so scripted callers using port 0 can
    discover the ephemeral port).
    """
    server = NetServer(tenants, config)
    await server.start()
    if announce is not None:
        announce(server.host, server.port)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    if install_signal_handlers:
        for sig in (signal.SIGTERM, signal.SIGINT):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(sig, stop.set)
    with contextlib.suppress(asyncio.CancelledError):
        await stop.wait()
    await server.drain()
    return server

"""Networked multi-tenant serving with WAL log-shipping read replicas.

Layers (see ``docs/replication.md``):

- :mod:`repro.net.protocol` — length-prefixed JSON frames, version
  handshake, error envelopes carrying ``retry_after``/``stale``.
- :mod:`repro.net.tenants` — named graph namespaces, each a fully
  isolated engine + quotas + replication log + idempotency index.
- :mod:`repro.net.server` — asyncio TCP front end with per-connection
  backpressure, read deadlines / slow-client eviction, and graceful
  SIGTERM drain.
- :mod:`repro.net.client` — blocking socket client (fail-fast: poisons
  itself on transport/framing errors).
- :mod:`repro.net.resilient` — retrying client: deadlines, decorrelated
  backoff, circuit breaker, reconnect, idempotent writes, hedged reads.
- :mod:`repro.net.faultproxy` — in-process TCP fault-injection proxy
  (latency, bandwidth caps, torn frames, resets, partitions).
- :mod:`repro.net.replica` — single-writer primary → N read replicas via
  WAL-framed log shipping; snapshot-consistent stale-tagged reads.
- :mod:`repro.net.bench` — the SRV2 replica-scaling benchmark.
"""

from repro.net.client import NetClient
from repro.net.faultproxy import FaultProxy
from repro.net.protocol import (
    PROTOCOL_NAME,
    PROTOCOL_VERSION,
    ConnectionClosed,
    FrameDecoder,
    ProtocolError,
    ServerError,
    encode_frame,
)
from repro.net.replica import LogShippingReplica, ReplicaConfig, run_replica
from repro.net.resilient import (
    CircuitOpenError,
    DeadlineExceeded,
    ResilientClient,
    RetryPolicy,
)
from repro.net.server import NetServer, NetServerConfig, ThreadedServer, serve
from repro.net.tenants import (
    IdempotencyIndex,
    ReplicationLog,
    Tenant,
    TenantConfig,
    TenantManager,
)

__all__ = [
    "CircuitOpenError",
    "ConnectionClosed",
    "DeadlineExceeded",
    "FaultProxy",
    "FrameDecoder",
    "IdempotencyIndex",
    "LogShippingReplica",
    "NetClient",
    "NetServer",
    "NetServerConfig",
    "PROTOCOL_NAME",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ReplicaConfig",
    "ReplicationLog",
    "ResilientClient",
    "RetryPolicy",
    "ServerError",
    "Tenant",
    "TenantConfig",
    "TenantManager",
    "ThreadedServer",
    "encode_frame",
    "run_replica",
    "serve",
]

"""Networked multi-tenant serving with WAL log-shipping read replicas.

Layers (see ``docs/replication.md``):

- :mod:`repro.net.protocol` — length-prefixed JSON frames, version
  handshake, error envelopes carrying ``retry_after``/``stale``.
- :mod:`repro.net.tenants` — named graph namespaces, each a fully
  isolated engine + quotas + replication log.
- :mod:`repro.net.server` — asyncio TCP front end with per-connection
  backpressure and graceful SIGTERM drain.
- :mod:`repro.net.client` — blocking socket client.
- :mod:`repro.net.replica` — single-writer primary → N read replicas via
  WAL-framed log shipping; snapshot-consistent stale-tagged reads.
- :mod:`repro.net.bench` — the SRV2 replica-scaling benchmark.
"""

from repro.net.client import NetClient
from repro.net.protocol import (
    PROTOCOL_NAME,
    PROTOCOL_VERSION,
    FrameDecoder,
    ProtocolError,
    ServerError,
    encode_frame,
)
from repro.net.replica import LogShippingReplica, ReplicaConfig, run_replica
from repro.net.server import NetServer, NetServerConfig, ThreadedServer, serve
from repro.net.tenants import (
    ReplicationLog,
    Tenant,
    TenantConfig,
    TenantManager,
)

__all__ = [
    "FrameDecoder",
    "LogShippingReplica",
    "NetClient",
    "NetServer",
    "NetServerConfig",
    "PROTOCOL_NAME",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ReplicaConfig",
    "ReplicationLog",
    "ServerError",
    "Tenant",
    "TenantConfig",
    "TenantManager",
    "ThreadedServer",
    "encode_frame",
    "run_replica",
    "serve",
]

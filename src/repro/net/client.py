"""Blocking TCP client for the ``repro-net`` protocol.

A thin, dependency-free socket client: one connection, sequential
request/response, version handshake on connect.  Error envelopes raise
:class:`~repro.net.protocol.ServerError` carrying the server's ``code``,
``retry_after``, and ``stale`` fields, so callers implement backoff
against the same hints the engine produced.

>>> with NetClient(host, port, tenant="default") as c:
...     c.submit("insert", 3, 7)
...     c.query("size")
"""

from __future__ import annotations

import socket
from typing import Any

from repro.net.protocol import (
    MAX_FRAME_BYTES,
    ConnectionClosed,
    FrameDecoder,
    ProtocolError,
    ServerError,
    decode_chunk,
    encode_frame,
    hello_frame,
    request_frame,
)

__all__ = ["NetClient"]


class NetClient:
    """One handshaked connection to a net server (not thread-safe).

    The connection latches closed on the first transport or framing
    failure: a :class:`ProtocolError` mid-response leaves a half-read
    socket and a desynced decoder/``_next_id``, so every later call raises
    :class:`~repro.net.protocol.ConnectionClosed` instead of silently
    mis-pairing frames.  Reconnect by constructing a fresh client (or use
    :class:`~repro.net.resilient.ResilientClient`, which does so
    automatically).
    """

    def __init__(self, host: str, port: int, tenant: str = "default",
                 timeout: float = 30.0,
                 max_frame: int = MAX_FRAME_BYTES) -> None:
        self.tenant = tenant
        self._closed_reason: str | None = None
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._decoder = FrameDecoder(max_frame)
        self._pending: list[dict] = []
        self._max_frame = max_frame
        self._next_id = 0
        self.hello = self.call("hello", _raw=hello_frame(0, tenant))

    # -- plumbing -------------------------------------------------------------

    @property
    def closed(self) -> bool:
        """True once the connection has been poisoned or closed."""
        return self._closed_reason is not None

    def _poison(self, reason: str) -> None:
        """Latch the connection closed; further calls raise
        :class:`ConnectionClosed`."""
        if self._closed_reason is None:
            self._closed_reason = reason
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - close never matters here
            pass

    def call(self, verb: str, _raw: dict | None = None,
             **params) -> dict[str, Any]:
        """Send one request, block for its response envelope.

        Returns the OK envelope as a dict; raises :class:`ServerError` on
        an error envelope, :class:`ProtocolError` on a broken stream (the
        connection is then poisoned), and :class:`ConnectionClosed` on a
        dead socket or any use after a failure.
        """
        if self._closed_reason is not None:
            raise ConnectionClosed(
                f"connection is closed ({self._closed_reason})")
        self._next_id += 1
        req_id = self._next_id
        msg = dict(_raw, id=req_id) if _raw is not None else \
            request_frame(req_id, verb, **params)
        try:
            self._sock.sendall(encode_frame(msg, self._max_frame))
            reply = self._recv_one()
            if reply.get("id") != req_id:
                raise ProtocolError(
                    f"response id {reply.get('id')} != request id {req_id}")
        except ProtocolError as exc:
            # half-read frame / desynced ids: the stream is unusable
            self._poison(str(exc))
            raise
        except OSError as exc:  # reset, timeout, broken pipe, ...
            self._poison(repr(exc))
            raise ConnectionClosed(f"connection lost: {exc!r}") from exc
        if not reply.get("ok"):
            raise ServerError.from_envelope(reply)
        return reply

    def _recv_one(self) -> dict:
        while not self._pending:
            data = self._sock.recv(65536)
            if not data:
                raise ProtocolError("server closed the connection")
            self._pending.extend(self._decoder.feed(data))
        return self._pending.pop(0)

    def close(self) -> None:
        """Close the connection; idempotent."""
        self._poison("closed by caller")

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- verbs ----------------------------------------------------------------

    def submit(self, op: str, u: int, v: int,
               idem: str | None = None) -> str:
        """Submit one update; returns the queue outcome. Sheds raise
        :class:`ServerError` with ``code`` ``shed``/``shed_degraded`` and a
        ``retry_after`` hint.

        ``idem`` is an optional client-generated idempotency key: the
        server records the outcome under the key at admission, and a
        retried submit carrying the same key returns the recorded outcome
        instead of re-applying the write (exactly-once across lost ACKs).
        """
        params: dict[str, Any] = {"op": op, "u": u, "v": v}
        if idem is not None:
            params["idem"] = idem
        return self.call("submit", **params)["status"]

    def submit_info(self, op: str, u: int, v: int,
                    idem: str | None = None) -> dict[str, Any]:
        """Like :meth:`submit` but returns the full OK envelope (includes
        ``deduped: true`` when an idempotency key was replayed)."""
        params: dict[str, Any] = {"op": op, "u": u, "v": v}
        if idem is not None:
            params["idem"] = idem
        return self.call("submit", **params)

    def query(self, kind: str, payload: Any = None,
              consistency: str = "snapshot") -> Any:
        """Read; returns just the value (see :meth:`query_info`)."""
        return self.query_info(kind, payload, consistency)["value"]

    def query_info(self, kind: str, payload: Any = None,
                   consistency: str = "snapshot") -> dict[str, Any]:
        """Read; returns ``{value, stale, as_of_seq}``."""
        params: dict[str, Any] = {"kind": kind, "consistency": consistency}
        if payload is not None:
            params["payload"] = list(payload) if isinstance(
                payload, tuple) else payload
        reply = self.call("query_info", **params)
        return {"value": reply["value"], "stale": reply["stale"],
                "as_of_seq": reply["as_of_seq"]}

    def query_batch(self, items, consistency: str = "snapshot"
                    ) -> dict[str, Any]:
        """Many reads in one frame, answered from one server snapshot.

        ``items`` is a list of ``(kind, payload)`` pairs (payload ``None``
        for nullary kinds).  Returns ``{values, stale, as_of_seq, unique,
        deduped}`` with ``values`` positionally aligned to ``items`` —
        each exactly what :meth:`query` would return for that item on the
        same snapshot.  One admission and ``service_time`` charge covers
        the whole batch, which is where the throughput win comes from.
        """
        wire_items = []
        for kind, payload in items:
            if isinstance(payload, tuple):
                payload = list(payload)
            wire_items.append([kind, payload])
        reply = self.call("query_batch", items=wire_items,
                          consistency=consistency)
        return {
            "values": reply["values"],
            "stale": reply["stale"],
            "as_of_seq": reply["as_of_seq"],
            "unique": reply["unique"],
            "deduped": reply["deduped"],
        }

    def edges(self) -> set[tuple[int, int]]:
        """The maintained output edge set, as canonical tuples."""
        return {tuple(e) for e in self.query("edges")}

    def metrics(self, all_tenants: bool = False) -> str:
        """Prometheus text exposition."""
        return self.call("metrics", all=all_tenants)["text"]

    def admin(self, action: str = "stats") -> dict[str, Any]:
        """Run an admin action (``stats``/``flush``/``tenants``/``drain``)."""
        return self.call("admin", action=action)

    def flush(self) -> int:
        """Flush the tenant's pending writes; returns the committed seq."""
        return self.call("admin", action="flush")["committed_seq"]

    def sync_info(self) -> dict[str, Any]:
        """Replica bootstrap: boot spec + shards + base_seq + log size."""
        return self.call("sync")

    def wal_fetch(self, offset: int,
                  max_bytes: int = 1 << 20) -> tuple[bytes, int, int]:
        """Fetch replication-log bytes from ``offset``.

        Returns ``(chunk, log_size, last_seq)``; an empty chunk with
        ``log_size == offset`` means the replica is caught up.
        """
        reply = self.call("wal_fetch", offset=offset, max_bytes=max_bytes)
        return (decode_chunk(reply["chunk"]), reply["log_size"],
                reply["last_seq"])

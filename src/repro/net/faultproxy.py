"""In-process TCP fault proxy for failure-domain testing (``repro.net``).

A toxiproxy-style proxy that sits on any client↔server or
replica↔primary link and injects the wire faults the resilience layer
must survive:

* **latency** — a fixed delay added to every forwarded chunk;
* **bandwidth caps** — forwarding throttled to a byte rate;
* **torn frames** — a prefix of the next chunk is forwarded, then the
  link is closed (FIN), leaving the peer with a half-read frame;
* **mid-frame disconnects** — same tear, but the link dies with an RST;
* **connection resets** — every live link is reset immediately;
* **full partitions** — live links are killed and new connections are
  accepted but never serviced (a black hole) until :meth:`heal`.

The proxy is deliberately *dumb*: it forwards opaque bytes and never
parses frames, so every fault it injects is one the real network can
produce.  Seeding lives with the caller — the chaos harness
(:mod:`repro.resilience.chaos`) drives these primitives from seeded
``ChaosPlan``-compatible schedules, choosing *when* to fire and with
which parameters from a deterministic RNG.

>>> with FaultProxy("127.0.0.1", server_port) as proxy:
...     client = NetClient(proxy.host, proxy.port)
...     proxy.tear_next("s2c")        # next response arrives half-framed
...     client.query("size")          # ProtocolError -> ConnectionClosed

Thread-safety: every control method may be called from any thread while
links are live.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Iterator

__all__ = ["FaultProxy", "PumpDirection"]

PumpDirection = str  # "c2s" (client -> upstream) or "s2c"

_RECV_CHUNK = 65536
_POLL_S = 0.05


def _reset_socket(sock: socket.socket) -> None:
    """Close ``sock`` with an RST instead of a FIN (SO_LINGER zero)."""
    try:
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER,
            b"\x01\x00\x00\x00\x00\x00\x00\x00",
        )
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


class _Link:
    """One proxied connection: two sockets, two pump threads."""

    def __init__(self, proxy: "FaultProxy", client: socket.socket,
                 upstream: socket.socket) -> None:
        self.proxy = proxy
        self.client = client
        self.upstream = upstream
        self.dead = False
        self._lock = threading.Lock()
        self.threads = [
            threading.Thread(
                target=proxy._pump, args=(self, client, upstream, "c2s"),
                daemon=True),
            threading.Thread(
                target=proxy._pump, args=(self, upstream, client, "s2c"),
                daemon=True),
        ]

    def start(self) -> None:
        for t in self.threads:
            t.start()

    def kill(self, rst: bool = True) -> None:
        """Tear the link down (idempotent); RST by default."""
        with self._lock:
            if self.dead:
                return
            self.dead = True
        for sock in (self.client, self.upstream):
            if rst:
                _reset_socket(sock)
            else:
                try:
                    sock.close()
                except OSError:
                    pass


class FaultProxy:
    """A TCP proxy with runtime-switchable fault injection.

    Parameters
    ----------
    upstream_host / upstream_port:
        Where healthy traffic is forwarded.
    host / port:
        Listen address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    """

    def __init__(self, upstream_host: str, upstream_port: int,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.host = host
        self.port = port
        self._lock = threading.Lock()
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stopping = False
        self._links: list[_Link] = []
        self._parked: list[socket.socket] = []
        # fault state (all guarded by _lock)
        self._latency_s = 0.0
        self._bandwidth_bps = 0.0  # 0 = unlimited
        self._partitioned = False
        self._tears: dict[str, list[tuple[float, bool]]] = {
            "c2s": [], "s2c": []}
        self.counters = {
            "connections": 0, "bytes_c2s": 0, "bytes_s2c": 0,
            "torn_frames": 0, "resets": 0, "partitions": 0,
            "blackholed": 0,
        }

    # -- lifecycle --------------------------------------------------------

    def start(self) -> "FaultProxy":
        """Bind, listen, and start the accept loop; returns ``self``."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen(64)
        listener.settimeout(_POLL_S)
        self.host, self.port = listener.getsockname()
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True)
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Close the listener and every link; idempotent."""
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for link in self._live_links():
            link.kill(rst=False)
        with self._lock:
            parked, self._parked = self._parked, []
        for sock in parked:
            try:
                sock.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "FaultProxy":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _live_links(self) -> list[_Link]:
        with self._lock:
            self._links = [ln for ln in self._links if not ln.dead]
            return list(self._links)

    # -- fault controls ---------------------------------------------------

    def set_latency(self, seconds: float) -> None:
        """Delay every forwarded chunk by ``seconds`` (0 clears)."""
        with self._lock:
            self._latency_s = max(0.0, float(seconds))

    def set_bandwidth(self, bytes_per_s: float) -> None:
        """Throttle forwarding to ``bytes_per_s`` (0 clears the cap)."""
        with self._lock:
            self._bandwidth_bps = max(0.0, float(bytes_per_s))

    def tear_next(self, direction: PumpDirection = "s2c",
                  fraction: float = 0.5, rst: bool = False) -> None:
        """Arm a one-shot tear: forward ``fraction`` of the next chunk in
        ``direction`` then kill the link — FIN (torn frame) by default,
        RST (mid-frame disconnect) with ``rst=True``."""
        if direction not in ("c2s", "s2c"):
            raise ValueError(f"unknown direction {direction!r}")
        with self._lock:
            self._tears[direction].append(
                (min(max(float(fraction), 0.0), 1.0), bool(rst)))

    def reset_all(self) -> int:
        """RST every live link now; returns how many were reset."""
        links = self._live_links()
        for link in links:
            link.kill(rst=True)
        with self._lock:
            self.counters["resets"] += len(links)
        return len(links)

    def partition(self) -> None:
        """Full partition: kill live links, black-hole new connections
        until :meth:`heal`."""
        with self._lock:
            already = self._partitioned
            self._partitioned = True
            if not already:
                self.counters["partitions"] += 1
        for link in self._live_links():
            link.kill(rst=True)

    def heal(self) -> None:
        """End a partition; parked (black-holed) connections are closed so
        their clients fail fast and reconnect through the healthy path."""
        with self._lock:
            self._partitioned = False
            parked, self._parked = self._parked, []
        for sock in parked:
            try:
                sock.close()
            except OSError:
                pass

    @property
    def partitioned(self) -> bool:
        with self._lock:
            return self._partitioned

    def clear_faults(self) -> None:
        """Return to transparent forwarding (does not heal a partition)."""
        with self._lock:
            self._latency_s = 0.0
            self._bandwidth_bps = 0.0
            self._tears = {"c2s": [], "s2c": []}

    def stats(self) -> dict[str, int]:
        """A snapshot of the injection counters."""
        with self._lock:
            return dict(self.counters)

    # -- data plane -------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while True:
            with self._lock:
                if self._stopping:
                    return
            try:
                client, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._lock:
                if self._partitioned:
                    # black hole: hold the connection open, never service
                    # it; the client's read deadline is what saves it
                    self._parked.append(client)
                    self.counters["blackholed"] += 1
                    continue
                self.counters["connections"] += 1
            try:
                upstream = socket.create_connection(
                    (self.upstream_host, self.upstream_port), timeout=5.0)
            except OSError:
                try:
                    client.close()
                except OSError:
                    pass
                continue
            for sock in (client, upstream):
                sock.settimeout(_POLL_S)
            link = _Link(self, client, upstream)
            with self._lock:
                self._links.append(link)
            link.start()

    def _take_tear(self, direction: PumpDirection
                   ) -> tuple[float, bool] | None:
        with self._lock:
            pending = self._tears[direction]
            return pending.pop(0) if pending else None

    def _pump(self, link: _Link, src: socket.socket, dst: socket.socket,
              direction: PumpDirection) -> None:
        """Forward ``src`` -> ``dst`` applying the live fault state."""
        while True:
            if link.dead or self._stopping:
                return
            try:
                data = src.recv(_RECV_CHUNK)
            except socket.timeout:
                continue
            except OSError:
                link.kill(rst=False)
                return
            if not data:
                link.kill(rst=False)
                return
            with self._lock:
                latency = self._latency_s
                bandwidth = self._bandwidth_bps
            if latency > 0.0:
                time.sleep(latency)
            tear = self._take_tear(direction)
            if tear is not None:
                fraction, rst = tear
                # keep at least 1 byte back so the peer sees a genuinely
                # torn frame, and forward at least the length prefix when
                # the chunk allows it (the nastiest place to cut)
                keep = min(len(data) - 1, max(1, int(len(data) * fraction)))
                if len(data) > 5:
                    keep = max(keep, 5)
                try:
                    dst.sendall(data[:keep])
                except OSError:
                    pass
                with self._lock:
                    self.counters["torn_frames"] += 1
                    if rst:
                        self.counters["resets"] += 1
                link.kill(rst=rst)
                return
            if bandwidth > 0.0:
                time.sleep(len(data) / bandwidth)
            try:
                dst.sendall(data)
            except OSError:
                link.kill(rst=False)
                return
            with self._lock:
                self.counters[f"bytes_{direction}"] += len(data)

    def _iter_links(self) -> Iterator[_Link]:  # pragma: no cover - debug
        yield from self._live_links()

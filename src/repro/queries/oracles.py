"""Query oracles on top of the dynamic structures.

Spanners and sparsifiers are *useful* because queries against the small
subgraph approximate queries against the full graph:

* :class:`DynamicDistanceOracle` — wraps any dynamic spanner; answers
  (batched) distance and connectivity queries by BFS over the maintained
  spanner, so every answer is within the spanner's stretch factor of the
  true distance while touching only Õ(n) edges.
* :class:`DynamicCutOracle` — wraps the dynamic spectral sparsifier;
  answers cut-weight and Laplacian quadratic-form queries against the
  weighted sparsifier.

Both proxy ``update(...)`` to the underlying structure and keep their query
state synchronized from the returned deltas, so a query never pays a full
rebuild.
"""

from __future__ import annotations

from typing import Iterable, Protocol, Sequence

import numpy as np

from repro.graph.dynamic_graph import Edge, norm_edge
from repro.graph.traversal import bfs_distances, bfs_distances_bounded
from repro.pram.cost import NULL_COST_MODEL, CostModel, log2ceil

__all__ = ["DynamicDistanceOracle", "DynamicCutOracle"]


class _SpannerLike(Protocol):
    def spanner_edges(self) -> set[Edge]: ...

    def update(self, insertions=(), deletions=()): ...


class DynamicDistanceOracle:
    """Approximate distances from a dynamic spanner.

    Every reported distance ``d`` satisfies ``dist_G(u, v) <= d <=
    stretch * dist_G(u, v)`` (lower bound because the spanner is a
    subgraph; upper bound by the spanner property).

    Parameters
    ----------
    n:
        Vertex count.
    spanner:
        Any structure exposing ``spanner_edges()`` and
        ``update(insertions, deletions) -> (ins, dels)`` — e.g.
        :class:`~repro.spanner.FullyDynamicSpanner` or
        :class:`~repro.contraction.SparseSpannerDynamic`.
    stretch:
        The wrapped structure's stretch guarantee (reported alongside
        answers; also used as the BFS cap for ``within``).
    """

    def __init__(
        self,
        n: int,
        spanner: _SpannerLike,
        stretch: float,
        cost: CostModel = NULL_COST_MODEL,
    ) -> None:
        self.n = n
        self.stretch = stretch
        self._spanner = spanner
        self._cost = cost
        self._adj: list[set[int]] = [set() for _ in range(n)]
        for u, v in spanner.spanner_edges():
            self._adj[u].add(v)
            self._adj[v].add(u)

    # -- maintenance ---------------------------------------------------------

    def update(
        self, insertions: Iterable[Edge] = (), deletions: Iterable[Edge] = ()
    ) -> tuple[set[Edge], set[Edge]]:
        """Apply a graph batch; keeps the query adjacency in sync."""
        ins, dels = self._spanner.update(
            insertions=insertions, deletions=deletions
        )
        self._cost.charge_hash_op(len(ins) + len(dels))
        for u, v in dels:
            self._adj[u].discard(v)
            self._adj[v].discard(u)
        for u, v in ins:
            self._adj[u].add(v)
            self._adj[v].add(u)
        return ins, dels

    def spanner_size(self) -> int:
        """Number of spanner edges backing the answers."""
        return sum(len(a) for a in self._adj) // 2

    # -- queries -----------------------------------------------------------------

    def distance(self, u: int, v: int) -> float:
        """Approximate distance (inf if disconnected)."""
        self._check(u)
        self._check(v)
        d = bfs_distances(self._adj, u).get(v)
        self._cost.charge(
            work=self.spanner_size() + 1, depth=log2ceil(self.n) ** 2
        )
        return float("inf") if d is None else float(d)

    def batch_distances(
        self, pairs: Sequence[tuple[int, int]]
    ) -> list[float]:
        """Answer many pairs; sources share BFS work, pairs run in
        parallel rounds."""
        by_source: dict[int, list[int]] = {}
        for u, v in pairs:
            self._check(u)
            self._check(v)
            by_source.setdefault(u, []).append(v)
        dist_maps: dict[int, dict[int, int]] = {}
        with self._cost.parallel() as par:
            for u in by_source:
                with par.task():
                    dist_maps[u] = bfs_distances(self._adj, u)
                    self._cost.charge(
                        work=self.spanner_size() + 1,
                        depth=log2ceil(self.n) ** 2,
                    )
        return [
            float(dist_maps[u].get(v, float("inf"))) for u, v in pairs
        ]

    def within(self, u: int, radius: int) -> set[int]:
        """Vertices within spanner-distance ``radius * stretch`` of ``u`` —
        a superset of the true ``radius``-ball, subset of the stretched
        ball."""
        self._check(u)
        cap = int(radius * self.stretch)
        self._cost.charge(
            work=self.spanner_size() + 1, depth=log2ceil(self.n) ** 2
        )
        return set(bfs_distances_bounded(self._adj, u, cap))

    def connected(self, u: int, v: int) -> bool:
        """Exact connectivity (spanners preserve connectivity)."""
        return self.distance(u, v) != float("inf")

    def _check(self, v: int) -> None:
        if not 0 <= v < self.n:
            raise ValueError(f"vertex {v} outside [0, {self.n})")


class _SparsifierLike(Protocol):
    def weighted_edges(self) -> dict[Edge, float]: ...

    def update(self, insertions=(), deletions=()): ...


class DynamicCutOracle:
    """Approximate cut/quadratic-form queries from a dynamic sparsifier.

    Answers are within the sparsifier's (1±ε) spectral guarantee of the
    exact values on the current graph.
    """

    def __init__(
        self,
        n: int,
        sparsifier: _SparsifierLike,
        cost: CostModel = NULL_COST_MODEL,
    ) -> None:
        self.n = n
        self._sparsifier = sparsifier
        self._cost = cost
        self._weights: dict[Edge, float] | None = None

    def update(
        self, insertions: Iterable[Edge] = (), deletions: Iterable[Edge] = ()
    ) -> tuple[set[Edge], set[Edge]]:
        """Apply a graph batch to the wrapped sparsifier (invalidates the weight cache)."""
        out = self._sparsifier.update(
            insertions=insertions, deletions=deletions
        )
        self._weights = None  # weights can shift levels; re-pull lazily
        return out

    def _edges(self) -> dict[Edge, float]:
        if self._weights is None:
            self._weights = dict(self._sparsifier.weighted_edges())
            self._cost.charge_hash_op(len(self._weights))
        return self._weights

    def cut_value(self, side: Iterable[int]) -> float:
        """Approximate weight of the cut ``(side, V - side)``."""
        side = set(side)
        for v in side:
            if not 0 <= v < self.n:
                raise ValueError(f"vertex {v} outside [0, {self.n})")
        w = self._edges()
        self._cost.charge(work=len(w) + 1, depth=log2ceil(len(w) + 2))
        return sum(
            weight
            for (u, v), weight in w.items()
            if (u in side) != (v in side)
        )

    def quadratic_form(self, x: Sequence[float]) -> float:
        """``x^T L_H x`` on the sparsifier — approximates ``x^T L_G x``."""
        if len(x) != self.n:
            raise ValueError("vector length must equal n")
        xs = np.asarray(x, dtype=float)
        w = self._edges()
        self._cost.charge(work=len(w) + 1, depth=log2ceil(len(w) + 2))
        return float(
            sum(
                weight * (xs[u] - xs[v]) ** 2
                for (u, v), weight in w.items()
            )
        )

    def sparsifier_size(self) -> int:
        """Number of weighted edges backing the answers."""
        return len(self._edges())

    def total_weight(self) -> float:
        """Sum of all sparsifier edge weights."""
        return sum(self._edges().values())

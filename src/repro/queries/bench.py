"""SRV3: batched vs query-at-a-time read throughput on a 95/5 mix.

The experiment behind ``repro bench-queries`` and the
``bench_srv3_read_mix`` gate scenario: drive a read-heavy request stream
(default 95% reads / 5% writes) against one
:class:`~repro.service.engine.SpannerService` twice per window — once
through the singleton :meth:`~repro.service.engine.SpannerService.query`
path, once through
:meth:`~repro.service.engine.SpannerService.query_batch` — and compare.

The stream is *windowed* so the comparison is honest: each window applies
its writes and flushes first, then both read paths answer the identical
read set against the identical snapshot.  That makes exact equivalence a
hard assertion (any mismatch is reported as a violation, same contract as
the differential oracle) while the wall-clock ratio isolates precisely
the thing batching changes: one shared traversal pass versus one
traversal per read.  Reads follow a hot-set skew (most pairs drawn from a
small vertex subset), the shape that gives coalescing and shared BFS
waves something to deduplicate — the regime batch queries are for.

Work/depth: the batched pass is charged to a real
:class:`~repro.pram.cost.CostModel`, and the totals land in the gate
baseline's exact-match fields, so the shared-traversal charging cannot
silently regress to per-query sweeps.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.pram.cost import CostModel

__all__ = ["BenchQueriesConfig", "BenchQueriesReport", "run_bench_queries"]


@dataclass
class BenchQueriesConfig:
    n: int = 512
    m: int = 640
    requests: int = 4000
    read_fraction: float = 0.95
    window: int = 500               # requests per write-then-read window
    hot_fraction: float = 0.9       # reads drawn from the hot vertex set
    k: int = 2                      # spanner stretch parameter
    seed: int = 4242
    repeats: int = 1                # timing repeats (best-of)
    # with parallel >= 2 the service owns a ProcessPoolBackend and a third
    # timed pass answers each window through the pool-backed query_batch
    # path (uncharged, so distance sweeps take the chunk-parallel route);
    # the singleton and charged-batch passes are unchanged, so the gate's
    # pinned work/depth totals never depend on this knob
    parallel: int = 0
    # snapshot adjacency substrate ("array" | "dict"); answers and
    # charged totals are identical on both (the gate's pinned work/depth
    # constants are substrate-invariant)
    substrate: str = "array"


@dataclass
class BenchQueriesReport:
    config: BenchQueriesConfig
    reads: int = 0
    writes: int = 0
    singleton_rps: float = 0.0
    batched_rps: float = 0.0
    speedup_x: float = 0.0
    parallel_rps: float = 0.0       # pool-backed batched pass (parallel >= 2)
    parallel_speedup_x: float = 0.0  # vs the singleton pass
    parallel_utilization: float = 0.0
    work: int = 0                   # batched-pass cost-model charges
    depth: int = 0
    dedup_ratio: float = 1.0        # unique keys / reads
    verified: bool = False
    violations: list[str] = field(default_factory=list)
    wall_seconds: float = 0.0

    def rows(self) -> list[dict[str, Any]]:
        """Table rows for :func:`repro.harness.format_table`."""
        row: dict[str, Any] = {
            "reads": self.reads,
            "writes": self.writes,
            "singleton_rps": round(self.singleton_rps, 1),
            "batched_rps": round(self.batched_rps, 1),
            "speedup": f"{self.speedup_x:.2f}x",
            "dedup": f"{self.dedup_ratio:.2f}",
            "verified": self.verified,
        }
        if self.config.parallel >= 2:
            row["parallel_rps"] = round(self.parallel_rps, 1)
            row["par_speedup"] = f"{self.parallel_speedup_x:.2f}x"
        return [row]

    def to_dict(self) -> dict:
        """JSON-safe report payload (the ``--json`` output)."""
        out: dict[str, Any] = {
            "n": self.config.n,
            "m": self.config.m,
            "requests": self.config.requests,
            "read_fraction": self.config.read_fraction,
            "reads": self.reads,
            "writes": self.writes,
            "singleton_rps": round(self.singleton_rps, 1),
            "batched_rps": round(self.batched_rps, 1),
            "speedup_x": round(self.speedup_x, 2),
            "work": self.work,
            "depth": self.depth,
            "dedup_ratio": round(self.dedup_ratio, 3),
            "verified": self.verified,
            "violations": self.violations,
            "wall_seconds": round(self.wall_seconds, 3),
        }
        # only present when the pool pass ran, so the default payload (the
        # shape the gate baseline records) is unchanged by this feature
        if self.config.parallel >= 2:
            out["parallel"] = self.config.parallel
            out["parallel_rps"] = round(self.parallel_rps, 1)
            out["parallel_speedup_x"] = round(self.parallel_speedup_x, 2)
            out["parallel_utilization"] = round(self.parallel_utilization, 3)
        return out


def _initial_edges(rng: np.random.Generator, n: int, m: int) -> list:
    edges: set = set()
    while len(edges) < m:
        u, v = rng.choice(n, size=2, replace=False)
        u, v = int(u), int(v)
        edges.add((u, v) if u < v else (v, u))
    return sorted(edges)


def _make_windows(
    cfg: BenchQueriesConfig, rng: np.random.Generator
) -> list[tuple[list, list]]:
    """The request stream as (writes, reads) windows, fixed up front so
    both timed passes replay identical work."""
    hot = max(4, cfg.n // 32)
    kinds = ("distance", "distance", "connected", "connected", "contains")
    windows: list[tuple[list, list]] = []
    produced = 0
    while produced < cfg.requests:
        size = min(cfg.window, cfg.requests - produced)
        produced += size
        n_reads = int(round(size * cfg.read_fraction))
        writes = []
        for _ in range(size - n_reads):
            u, v = rng.choice(cfg.n, size=2, replace=False)
            op = "insert" if rng.random() < 0.5 else "delete"
            writes.append((op, int(u), int(v)))
        reads = []
        for _ in range(n_reads):
            if rng.random() < 0.02:
                reads.append(("size", None))
                continue
            lo = hot if rng.random() < cfg.hot_fraction else cfg.n
            u = int(rng.integers(0, lo))
            v = int(rng.integers(0, lo))
            kind = kinds[int(rng.integers(0, len(kinds)))]
            reads.append((kind, (u, v)))
        windows.append((writes, reads))
    return windows


def run_bench_queries(cfg: BenchQueriesConfig) -> BenchQueriesReport:
    """Run the SRV3 comparison; deterministic shape for a fixed config."""
    from repro.queries.batch import coalesce_queries
    from repro.service.engine import (
        LocalExecutor,
        ServiceConfig,
        SpannerService,
    )

    t_start = time.perf_counter()
    rng = np.random.default_rng(cfg.seed)
    edges = _initial_edges(rng, cfg.n, cfg.m)
    windows = _make_windows(cfg, rng)
    report = BenchQueriesReport(config=cfg)

    best_single = float("inf")
    best_batch = float("inf")
    best_par = float("inf")
    for _ in range(max(cfg.repeats, 1)):
        spec = {"kind": "spanner", "n": cfg.n, "edges": edges,
                "k": cfg.k, "seed": cfg.seed}
        backend = None
        if cfg.parallel >= 2:
            # fork before the service spawns any threads of its own; the
            # engine owns the backend and close() shuts it down
            from repro.parallel import ProcessPoolBackend

            backend = ProcessPoolBackend(cfg.parallel, min_items=32)
        svc = SpannerService(
            LocalExecutor(spec),
            config=ServiceConfig(substrate=cfg.substrate),
            parallel=backend,
        )
        cm = CostModel()
        t_single = 0.0
        t_batch = 0.0
        t_par = 0.0
        reads = writes = 0
        unique = 0
        violations: list[str] = []
        try:
            for writes_w, reads_w in windows:
                for op, u, v in writes_w:
                    svc.submit_update(op, u, v)
                svc.flush()
                writes += len(writes_w)
                if not reads_w:
                    continue
                reads += len(reads_w)
                t0 = time.perf_counter()
                singles = [svc.query(kind, payload)
                           for kind, payload in reads_w]
                t_single += time.perf_counter() - t0
                t0 = time.perf_counter()
                batch = svc.query_batch(reads_w, cost=cm)
                t_batch += time.perf_counter() - t0
                keys, _ = coalesce_queries(reads_w)
                unique += len(keys)
                if not violations:
                    for i, (got, ref) in enumerate(
                            zip((r.value for r in batch), singles)):
                        if got != ref:
                            violations.append(
                                f"window read {i} {reads_w[i]!r}: batch "
                                f"answered {got!r}, singleton {ref!r}")
                            break
                if backend is not None:
                    # uncharged, so distance sweeps take the pool's
                    # chunk-parallel route (pruning stays round-granular)
                    t0 = time.perf_counter()
                    pbatch = svc.query_batch(reads_w)
                    t_par += time.perf_counter() - t0
                    if not violations:
                        for i, (got, ref) in enumerate(
                                zip((r.value for r in pbatch), singles)):
                            if got != ref:
                                violations.append(
                                    f"window read {i} {reads_w[i]!r}: pool "
                                    f"answered {got!r}, singleton {ref!r}")
                                break
        finally:
            svc.close()
        if backend is not None:
            report.parallel_utilization = backend.utilization
        best_single = min(best_single, t_single)
        best_batch = min(best_batch, t_batch)
        best_par = min(best_par, t_par)
        # cost charges and stream shape are identical across repeats;
        # keep the last repeat's accounting
        report.reads = reads
        report.writes = writes
        report.work = cm.work
        report.depth = cm.depth
        report.dedup_ratio = unique / reads if reads else 1.0
        report.violations = violations

    report.singleton_rps = report.reads / best_single \
        if best_single > 0 else 0.0
    report.batched_rps = report.reads / best_batch \
        if best_batch > 0 else 0.0
    report.speedup_x = best_single / best_batch if best_batch > 0 else 0.0
    if cfg.parallel >= 2 and best_par > 0 and best_par != float("inf"):
        report.parallel_rps = report.reads / best_par
        report.parallel_speedup_x = best_single / best_par
    report.verified = not report.violations
    report.wall_seconds = time.perf_counter() - t_start
    return report

"""Batched queries on the dynamic structures.

The paper batches *updates* to win work/depth bounds; this module batches
*queries* the same way ("Parallel batch queries on dynamic trees",
arXiv 2506.16477).  Three shared-work primitives, each with explicit
work/depth charges to the ambient :class:`~repro.pram.cost.CostModel`:

* :func:`multi_source_bfs` — k-source level-synchronous BFS that shares
  frontier expansion: one sweep with a source-bitmask per vertex, so a
  vertex scanned on behalf of several sources in the same round pays one
  adjacency scan, not k.
* :func:`batch_components` / :func:`batch_connected` — connectivity for
  many pairs by flooding each *touched* component once; total work is
  bounded by the graph size independent of the number of queries.
* :func:`batch_find_repr` / :func:`batch_connected_forest` — batched
  root-finding on an :class:`~repro.connectivity.euler_tour.EulerTourForest`
  that deduplicates root paths: every treap node visited caches its root
  for the batch, so later queries in the same tree stop at the first
  cached node instead of re-walking the shared path suffix.

:func:`answer_queries` is the uniform entry point the serving engine
(:meth:`repro.service.engine.SpannerService.query_batch`), the wire
protocol (``query_batch`` verb), and the differential oracle
(:mod:`repro.oracle.queries`) all share: it coalesces a
:class:`QueryBatch` (dedup identical ``(kind, u, v)`` keys, fold the
symmetric orientations), answers every key from shared traversals over
one snapshot, and reports :class:`BatchQueryStats` so callers can pin the
charges.  Answers are *exactly* those of the query-at-a-time path — batch
queries are an execution strategy, never an approximation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from repro.graph.dynamic_graph import Edge
from repro.graph.traversal import _csr_view, _gather_neighbors, _neighbor_lookup
from repro.pram.cost import NULL_COST_MODEL, CostModel, log2ceil

__all__ = [
    "BatchQueryStats",
    "PAIR_KINDS",
    "QueryBatch",
    "answer_queries",
    "batch_components",
    "batch_connected",
    "batch_connected_forest",
    "batch_distances",
    "batch_find_repr",
    "batch_stretch_check",
    "coalesce_queries",
    "multi_source_bfs",
]

Adjacency = Mapping[int, Iterable[int]] | Sequence[Iterable[int]]

#: query kinds whose payload is an (unordered) vertex pair
PAIR_KINDS = ("contains", "distance", "connected")
#: query kinds with no payload
NULLARY_KINDS = ("size", "edges")


def _log_n(adj: Adjacency, n: int | None) -> int:
    if n is None:
        n = len(adj)
    return log2ceil(max(n, 2))


def _sorted_neighbors(adj):
    """Neighbor accessor yielding ascending plain-int vertex ids.

    The canonical scan order for charge schedules that depend on scan
    order (targets-mode :func:`multi_source_bfs`): identical for a
    dict-of-sets snapshot and the array substrate holding the same graph.
    """
    if hasattr(adj, "sorted_flat"):
        # array substrate: one cached per-epoch flat adjacency in
        # canonical order — a list slice per scan instead of a numpy
        # sort per scan
        bounds, flat = adj.sorted_flat()
        nn = len(adj)
        return lambda u: (
            flat[bounds[u]:bounds[u + 1]] if 0 <= u < nn else []
        )
    base = _neighbor_lookup(adj)
    return lambda u: sorted(base(u))


# -- shared traversals --------------------------------------------------------


def multi_source_bfs(
    adj: Adjacency,
    sources: Sequence[int],
    *,
    targets: Mapping[int, Iterable[int]] | None = None,
    bound: int | None = None,
    n: int | None = None,
    cost: CostModel = NULL_COST_MODEL,
    backend=None,
    adj_version: Any = None,
) -> dict[int, dict[int, int]]:
    """k-source level-synchronous BFS sharing frontier expansion.

    One sweep serves every source: each vertex carries a bitmask of the
    sources that have reached it, and each level expands the *union*
    frontier once — a vertex whose adjacency serves several sources in
    the same round is scanned once, not once per source.  Per level the
    model is charged one parallel round: work = frontier adjacency scans,
    depth = ``O(log n)`` (the semisort merging discovered
    ``(vertex, source-set)`` pairs), so total depth is
    ``levels * log2ceil(n)`` instead of the sum over k sequential sweeps.

    ``targets[s]`` prunes source ``s`` once all its targets settled —
    mirroring the engine's target-pruned singleton BFS, so with targets
    set the returned distances are only guaranteed at those targets.
    ``bound`` caps the level (vertices farther than ``bound`` absent).

    Returns ``{source: {vertex: distance}}``; unreached vertices absent.
    Duplicate sources are deduplicated; a source absent from a dict
    adjacency simply has no neighbors.

    ``backend`` (an :class:`repro.parallel.ExecutionBackend`) executes the
    frontier rounds across worker processes.  Answers are identical either
    way; charges are too when no targets are given.  With targets *and* a
    recording cost model the sweep stays sequential — mid-round target
    pruning makes the charged scan count depend on scan order, and the
    canonical (pinned) charges are the sequential ones.  To keep that
    canonical schedule *substrate-invariant* (dict-of-sets and the array
    substrate store neighbors in different orders), the targets-mode sweep
    scans each adjacency list in ascending vertex order — so the charged
    totals depend only on the graph and the query batch, never on the
    container.
    """
    if backend is not None and (targets is None or not cost.enabled):
        from repro.parallel.kernels import parallel_multi_source_bfs

        return parallel_multi_source_bfs(
            backend, adj, sources, targets=targets, bound=bound, n=n,
            cost=cost, adj_version=adj_version,
        )
    if targets is None and backend is None:
        csr = _csr_view(adj)
        if csr is not None and 0 < len(set(sources)) <= 64:
            # array substrate, no mid-round target pruning: the charged
            # scan count per level is |frontier| + sum(deg(frontier)) —
            # order-independent, so the vectorized sweep charges the
            # byte-identical totals
            return _multi_source_bfs_csr(
                csr, sources, bound=bound, cost=cost, logn=_log_n(adj, n)
            )
    # targets mode: canonical ascending scan order (see docstring); the
    # no-targets scalar fallback keeps raw container order — its charged
    # counts are order-independent anyway
    neighbors = (
        _sorted_neighbors(adj) if targets is not None
        else _neighbor_lookup(adj)
    )
    srcs = list(dict.fromkeys(sources))
    k = len(srcs)
    logn = _log_n(adj, n)
    dist: dict[int, dict[int, int]] = {s: {s: 0} for s in srcs}
    if k == 0:
        return dist
    bit = {s: 1 << i for i, s in enumerate(srcs)}
    active = (1 << k) - 1
    want: dict[int, set[int]] | None = None
    if targets is not None:
        want = {}
        for s in srcs:
            ts = set(targets.get(s, ())) - {s}
            if ts:
                want[s] = ts
            else:
                active &= ~bit[s]
    reached: dict[int, int] = {}
    frontier: dict[int, int] = {}
    for s in srcs:
        reached[s] = reached.get(s, 0) | bit[s]
        frontier[s] = frontier.get(s, 0) | bit[s]
    # the initial semisort placing k sources into their buckets
    cost.pfor_cost(k, 1, depth=logn)
    level = 0
    while frontier and active:
        level += 1
        if bound is not None and level > bound:
            break
        scans = 0
        nxt: dict[int, int] = {}
        for u, mask in frontier.items():
            mask &= active
            if not mask:
                continue
            scans += 1
            for w in neighbors(u):
                scans += 1
                add = mask & ~reached.get(w, 0)
                if not add:
                    continue
                reached[w] = reached.get(w, 0) | add
                nxt[w] = nxt.get(w, 0) | add
                mm = add
                while mm:
                    b = mm & -mm
                    mm ^= b
                    s = srcs[b.bit_length() - 1]
                    dist[s][w] = level
                    if want is not None:
                        ws = want.get(s)
                        if ws is not None:
                            ws.discard(w)
                            if not ws:
                                active &= ~bit[s]
        # one parallel frontier-expansion round
        cost.pfor_cost(scans, 1, depth=logn)
        frontier = nxt
    return dist


def _multi_source_bfs_csr(
    csr,
    sources: Sequence[int],
    *,
    bound: int | None,
    cost: CostModel,
    logn: int,
) -> dict[int, dict[int, int]]:
    """Vectorized no-targets :func:`multi_source_bfs` over a CSR view.

    Level-synchronous bitmask propagation in numpy ``uint64`` (hence the
    k <= 64 guard at the call site): each round gathers every frontier
    vertex's neighbor slice at once, ORs the source masks per discovered
    vertex with one ``reduceat``, and charges the identical
    ``pfor_cost(|frontier| + scanned, 1, depth=logn)`` the scalar sweep
    charges.  Answers and charges are byte-identical to the scalar path.
    """
    import numpy as np

    indptr, indices = csr
    n = len(indptr) - 1
    srcs = list(dict.fromkeys(sources))
    k = len(srcs)
    dist: dict[int, dict[int, int]] = {s: {s: 0} for s in srcs}
    cost.pfor_cost(k, 1, depth=logn)
    src_arr = np.asarray(srcs, dtype=np.int64)
    in_range = (src_arr >= 0) & (src_arr < n)
    reached = np.zeros(n, dtype=np.uint64)
    bits = np.left_shift(np.uint64(1), np.arange(k, dtype=np.uint64))
    np.bitwise_or.at(reached, src_arr[in_range], bits[in_range])
    frontier_v = src_arr[in_range]
    frontier_m = bits[in_range]
    # out-of-range sources behave like isolated vertices (dict-adjacency
    # parity): present in the result with only themselves, never expanded —
    # but they still occupy a frontier slot for the charged scan count
    phantom = int((~in_range).sum())
    if k and len(frontier_v):
        order = np.argsort(frontier_v, kind="stable")
        frontier_v = frontier_v[order]
        frontier_m = frontier_m[order]
        starts = np.nonzero(
            np.r_[True, frontier_v[1:] != frontier_v[:-1]]
        )[0]
        frontier_m = np.bitwise_or.reduceat(frontier_m, starts)
        frontier_v = frontier_v[starts]
    level = 0
    while (len(frontier_v) or phantom):
        level += 1
        if bound is not None and level > bound:
            break
        counts = indptr[frontier_v + 1] - indptr[frontier_v]
        scans = int(len(frontier_v)) + phantom + int(counts.sum())
        nbrs = _gather_neighbors(indptr, indices, frontier_v)
        masks = np.repeat(frontier_m, counts)
        add = masks & ~reached[nbrs]
        keep = add != 0
        nb = nbrs[keep].astype(np.int64)
        am = add[keep]
        phantom = 0
        if len(nb):
            order = np.argsort(nb, kind="stable")
            nb = nb[order]
            am = am[order]
            starts = np.nonzero(np.r_[True, nb[1:] != nb[:-1]])[0]
            uniq = nb[starts]
            union = np.bitwise_or.reduceat(am, starts)
            reached[uniq] |= union
            for i in range(k):
                hit = (union >> np.uint64(i)) & np.uint64(1)
                verts = uniq[hit.astype(bool)]
                if len(verts):
                    dist[srcs[i]].update(
                        dict.fromkeys(verts.tolist(), level)
                    )
            frontier_v, frontier_m = uniq, union
        else:
            frontier_v = frontier_v[:0]
            frontier_m = frontier_m[:0]
        cost.pfor_cost(scans, 1, depth=logn)
    return dist


def batch_distances(
    adj: Adjacency,
    pairs: Sequence[tuple[int, int]],
    *,
    n: int | None = None,
    cost: CostModel = NULL_COST_MODEL,
    backend=None,
    adj_version: Any = None,
) -> list[float]:
    """Distances for many ``(u, v)`` pairs from one shared sweep.

    Answers equal the singleton path exactly (``inf`` when disconnected,
    ``0.0`` on the diagonal).  Pairs are normalized (distance is
    symmetric) and grouped by source, so duplicated and reversed pairs
    cost nothing and each distinct source contributes one wave to a
    single :func:`multi_source_bfs` call.
    """
    keys: list[tuple[int, int]] = []
    want: dict[int, set[int]] = {}
    for u, v in pairs:
        a, b = (u, v) if u <= v else (v, u)
        keys.append((a, b))
        if a != b:
            want.setdefault(a, set()).add(b)
    cost.charge_hash_op(len(pairs))  # pair normalization + source grouping
    dist = multi_source_bfs(
        adj, list(want), targets={s: set(t) for s, t in want.items()},
        n=n, cost=cost, backend=backend, adj_version=adj_version,
    ) if want else {}
    out: list[float] = []
    for a, b in keys:
        if a == b:
            out.append(0.0)
        else:
            d = dist[a].get(b)
            out.append(float("inf") if d is None else float(d))
    return out


def batch_components(
    adj: Adjacency,
    vertices: Iterable[int],
    *,
    n: int | None = None,
    cost: CostModel = NULL_COST_MODEL,
    backend=None,
    adj_version: Any = None,
) -> dict[int, int]:
    """Component label for each queried vertex; touched components flood once.

    Labels are canonical per batch (the first queried vertex of the
    component); two vertices share a label iff they are connected.  Total
    work is bounded by the size of the *touched* components — independent
    of how many queries land in them — which is the whole dividend of
    batching connectivity reads.

    With a ``backend``, floods expand chunk-parallel across workers; the
    per-round scan count is partition-invariant, so answers *and* charges
    match the sequential path exactly in every mode.
    """
    if backend is not None:
        from repro.parallel.kernels import parallel_batch_components

        return parallel_batch_components(
            backend, adj, vertices, n=n, cost=cost, adj_version=adj_version,
        )
    csr = _csr_view(adj)
    if csr is not None:
        # flood charges (|frontier| + scanned per round) are partition-
        # and order-invariant, so the vectorized flood is charge-exact
        return _batch_components_csr(
            csr, vertices, cost=cost, logn=_log_n(adj, n)
        )
    neighbors = _neighbor_lookup(adj)
    logn = _log_n(adj, n)
    comp: dict[int, int] = {}
    for v0 in vertices:
        if v0 in comp:
            continue
        comp[v0] = v0
        frontier = [v0]
        while frontier:
            scans = 0
            nxt: list[int] = []
            for u in frontier:
                scans += 1
                for w in neighbors(u):
                    scans += 1
                    if w not in comp:
                        comp[w] = v0
                        nxt.append(w)
            cost.pfor_cost(scans, 1, depth=logn)
            frontier = nxt
    return comp


def _batch_components_csr(
    csr,
    vertices: Iterable[int],
    *,
    cost: CostModel,
    logn: int,
) -> dict[int, int]:
    """Vectorized :func:`batch_components` flood over a CSR view.

    Same flood order (per queried vertex, whole-frontier rounds), same
    labels (first queried vertex of each component), same per-round
    ``pfor_cost`` charges — just numpy gathers instead of per-edge Python.
    """
    import numpy as np

    indptr, indices = csr
    n = len(indptr) - 1
    label = np.full(n, -1, dtype=np.int64)
    extra: dict[int, int] = {}   # out-of-range queried vertices
    for v0 in vertices:
        if not 0 <= v0 < n:
            if v0 not in extra:
                extra[v0] = v0
                # the scalar path floods an absent vertex as one
                # neighborless frontier round
                cost.pfor_cost(1, 1, depth=logn)
            continue
        if label[v0] >= 0:
            continue
        label[v0] = v0
        frontier = np.array([v0], dtype=np.int64)
        while len(frontier):
            counts = indptr[frontier + 1] - indptr[frontier]
            scans = int(len(frontier)) + int(counts.sum())
            nbrs = _gather_neighbors(indptr, indices, frontier).astype(
                np.int64
            )
            new = nbrs[label[nbrs] < 0]
            if len(new):
                new = np.unique(new)
                label[new] = v0
            cost.pfor_cost(scans, 1, depth=logn)
            frontier = new
    touched = np.nonzero(label >= 0)[0]
    comp = dict(zip(touched.tolist(), label[touched].tolist()))
    comp.update(extra)
    return comp


def batch_connected(
    adj: Adjacency,
    pairs: Sequence[tuple[int, int]],
    *,
    n: int | None = None,
    cost: CostModel = NULL_COST_MODEL,
    backend=None,
    adj_version: Any = None,
) -> list[bool]:
    """Connectivity for many pairs via :func:`batch_components`."""
    verts: list[int] = []
    for u, v in pairs:
        if u != v:
            verts.append(u)
            verts.append(v)
    cost.charge_hash_op(len(pairs))
    comp = batch_components(
        adj, verts, n=n, cost=cost, backend=backend, adj_version=adj_version
    )
    return [u == v or comp[u] == comp[v] for u, v in pairs]


# -- Euler-tour forest batches ------------------------------------------------


def batch_find_repr(
    forest,
    vertices: Sequence[int],
    *,
    cost: CostModel = NULL_COST_MODEL,
) -> list[int]:
    """``find_repr`` for many vertices, deduplicating root-finding paths.

    Every treap node visited caches its root for the duration of the
    batch, so two queries in the same tree pay the shared suffix of
    their root paths once — the second walk stops at the first cached
    node.  Answers equal ``[forest.find_repr(v) for v in vertices]``
    exactly (including ``ValueError`` on out-of-range vertices, and the
    vertex itself for never-linked singletons).

    Charged as one parallel round of pointer-jumping walks: work = actual
    (memo-shortened) parent steps, depth = ``O(log n)`` (treap height).
    """
    memo: dict[int, Any] = {}
    out: list[int] = []
    steps = 0
    for v in vertices:
        forest._check_vertex(v)
        cur = forest._loop[v]
        path = []
        while True:
            root = memo.get(id(cur))
            if root is not None:
                break
            if cur.parent is None:
                root = cur
                break
            path.append(cur)
            cur = cur.parent
            steps += 1
        memo[id(cur)] = root
        for node in path:
            memo[id(node)] = root
        out.append(root.arc[0])
    cost.charge_many(steps + len(out), log2ceil(max(forest.n, 2)))
    return out


def batch_connected_forest(
    forest,
    pairs: Sequence[tuple[int, int]],
    *,
    cost: CostModel = NULL_COST_MODEL,
) -> list[bool]:
    """Batched :meth:`EulerTourForest.connected` over shared root paths.

    Exactly equal to ``[forest.connected(u, v) for u, v in pairs]`` —
    in particular ``connected(v, v)`` is True even for never-linked
    singleton vertices — but every distinct vertex finds its root once
    per batch via :func:`batch_find_repr`'s path memo.
    """
    flat: list[int] = []
    for u, v in pairs:
        flat.append(u)
        flat.append(v)
    reprs = batch_find_repr(forest, flat, cost=cost)
    return [reprs[2 * i] == reprs[2 * i + 1] for i in range(len(pairs))]


# -- batched stretch checks ---------------------------------------------------


def batch_stretch_check(
    edges: Iterable[Edge],
    spanner_adj: Adjacency,
    stretch: float,
    *,
    n: int | None = None,
    cost: CostModel = NULL_COST_MODEL,
    backend=None,
    adj_version: Any = None,
) -> list[Edge]:
    """Check ``dist_H(u, v) <= stretch`` for a batch of graph edges.

    The spanner property per edge, verified in one shared *bounded*
    sweep: edges are grouped by endpoint and every distinct source
    contributes one wave to a single :func:`multi_source_bfs` capped at
    ``floor(stretch)`` levels.  Returns the edges that violate the bound
    (empty list = the spanner property holds on the batch), identical to
    checking each edge with its own bounded BFS.
    """
    bound = int(math.floor(stretch))
    keys: list[tuple[int, int]] = []
    want: dict[int, set[int]] = {}
    for u, v in edges:
        a, b = (u, v) if u <= v else (v, u)
        keys.append((a, b))
        if a != b:
            want.setdefault(a, set()).add(b)
    cost.charge_hash_op(len(keys))
    dist = multi_source_bfs(
        spanner_adj, list(want),
        targets={s: set(t) for s, t in want.items()},
        bound=bound, n=n, cost=cost, backend=backend,
        adj_version=adj_version,
    ) if want else {}
    return [
        (a, b) for a, b in keys if a != b and dist[a].get(b) is None
    ]


# -- the batch query API ------------------------------------------------------


@dataclass
class QueryBatch:
    """An ordered batch of read requests — the read-side analogue of
    :class:`~repro.workloads.streams.UpdateBatch`.

    Each item is ``(kind, payload)`` with the serving engine's query
    kinds: ``"size"``/``"edges"`` (payload ``None``) and ``"contains"``/
    ``"distance"``/``"connected"`` (payload = vertex pair).
    """

    items: list[tuple[str, Any]]

    @property
    def size(self) -> int:
        return len(self.items)

    def coalesce(self) -> tuple[list[tuple[str, Any]], list[int]]:
        """Dedup to unique normalized keys; see :func:`coalesce_queries`."""
        return coalesce_queries(self.items)


def coalesce_queries(
    items: Sequence[tuple[str, Any]],
) -> tuple[list[tuple[str, Any]], list[int]]:
    """Normalize and deduplicate a query batch.

    Returns ``(keys, index)``: ``keys`` is the ordered list of unique
    normalized ``(kind, payload)`` keys and ``index[i]`` locates the key
    answering ``items[i]`` — so answers computed per key fan back out to
    the original order.  Pair payloads are canonicalized to ``u <= v``
    (all pair kinds are symmetric on an undirected graph), which lets
    reversed duplicates coalesce too.  Raises ``ValueError`` on an
    unknown kind or a malformed payload, before any traversal runs.
    """
    keys: list[tuple[str, Any]] = []
    pos: dict[tuple[str, Any], int] = {}
    index: list[int] = []
    for item in items:
        kind, payload = item
        if kind in PAIR_KINDS:
            u, v = payload
            u, v = int(u), int(v)
            key = (kind, (u, v) if u <= v else (v, u))
        elif kind in NULLARY_KINDS:
            key = (kind, None)
        else:
            raise ValueError(f"unknown query kind {kind!r}")
        p = pos.get(key)
        if p is None:
            p = pos[key] = len(keys)
            keys.append(key)
        index.append(p)
    return keys, index


@dataclass
class BatchQueryStats:
    """Measured shape of one :func:`answer_queries` call.

    ``work``/``depth`` are the cost-model charges of the whole batch —
    the quantities the oracle's envelope checks and the SRV3 bench gate
    pin.  ``queries``/``unique`` expose the dedup ratio; ``sources`` is
    the number of distinct BFS waves the distance queries needed.
    """

    queries: int = 0
    unique: int = 0
    sources: int = 0
    work: int = 0
    depth: int = 0

    @property
    def dedup_ratio(self) -> float:
        return self.unique / self.queries if self.queries else 1.0


def answer_queries(
    items: Sequence[tuple[str, Any]] | QueryBatch,
    *,
    edge_set: set[Edge],
    adjacency: Adjacency,
    n: int | None = None,
    cost: CostModel = NULL_COST_MODEL,
    backend=None,
    adj_version: Any = None,
) -> tuple[list[Any], BatchQueryStats]:
    """Answer a whole query batch from one snapshot via shared traversals.

    ``edge_set`` and ``adjacency`` are two views of the same snapshot
    (the engine passes its flushed snapshot and the lazily-built BFS
    adjacency).  Unknown kinds raise before anything is answered.

    Answers are exactly the query-at-a-time answers: ``size`` / ``edges``
    / ``contains`` read the snapshot directly; all ``distance`` keys
    share one :func:`multi_source_bfs` sweep; all ``connected`` keys
    share one :func:`batch_components` labeling.  Returns the per-item
    answer list (original order and multiplicity) plus
    :class:`BatchQueryStats` carrying the charged work/depth.
    """
    if isinstance(items, QueryBatch):
        items = items.items
    keys, index = coalesce_queries(items)
    dist_pairs: list[tuple[int, int]] = []
    conn_pairs: list[tuple[int, int]] = []
    for kind, payload in keys:
        if kind == "distance":
            dist_pairs.append(payload)
        elif kind == "connected":
            conn_pairs.append(payload)
    answers: dict[tuple[str, Any], Any] = {}
    with cost.frame() as fr:
        cost.charge_hash_op(len(items))  # key dedup semisort
        dists = batch_distances(
            adjacency, dist_pairs, n=n, cost=cost,
            backend=backend, adj_version=adj_version,
        ) if dist_pairs else []
        conns = batch_connected(
            adjacency, conn_pairs, n=n, cost=cost,
            backend=backend, adj_version=adj_version,
        ) if conn_pairs else []
        di = ci = 0
        for key in keys:
            kind, payload = key
            if kind == "size":
                answers[key] = len(edge_set)
            elif kind == "edges":
                answers[key] = set(edge_set)
            elif kind == "contains":
                answers[key] = payload in edge_set
                cost.charge_hash_op()
            elif kind == "distance":
                answers[key] = dists[di]
                di += 1
            else:  # connected
                answers[key] = conns[ci]
                ci += 1
    stats = BatchQueryStats(
        queries=len(items),
        unique=len(keys),
        sources=len({u for u, v in dist_pairs if u != v}),
        work=fr.work,
        depth=fr.depth,
    )
    return [answers[keys[i]] for i in index], stats

"""Query oracles (approximate distances, cuts) over the dynamic
structures."""

from repro.queries.oracles import DynamicCutOracle, DynamicDistanceOracle

__all__ = ["DynamicCutOracle", "DynamicDistanceOracle"]

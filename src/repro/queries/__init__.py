"""Query layer over the dynamic structures: per-query oracles
(approximate distances, cuts) and the batched query engine that shares
traversal work across a whole batch of reads (see ``docs/queries.md``)."""

from repro.queries.batch import (
    BatchQueryStats,
    QueryBatch,
    answer_queries,
    batch_components,
    batch_connected,
    batch_connected_forest,
    batch_distances,
    batch_find_repr,
    batch_stretch_check,
    coalesce_queries,
    multi_source_bfs,
)
from repro.queries.oracles import DynamicCutOracle, DynamicDistanceOracle

__all__ = [
    "BatchQueryStats",
    "DynamicCutOracle",
    "DynamicDistanceOracle",
    "QueryBatch",
    "answer_queries",
    "batch_components",
    "batch_connected",
    "batch_connected_forest",
    "batch_distances",
    "batch_find_repr",
    "batch_stretch_check",
    "coalesce_queries",
    "multi_source_bfs",
]

"""Decremental t-bundle spanners (Theorem 1.5).

A t-bundle is ``B = H_1 ∪ ... ∪ H_t`` with each ``H_i`` an O(log n)-spanner
of ``G ∖ (H_1 ∪ ... ∪ H_{i-1})``.  Level ``i`` is a Lemma 6.4 structure
``D_i`` plus a stash ``J_i``: when an edge leaves ``D_i``'s maintained
spanner but remains in the graph it is parked in ``J_i`` (a spanner stays a
spanner when the underlying graph loses edges it doesn't contain — and H_i
only ever *grows* apart from true graph deletions, which is the
monotonicity that bounds the bundle's recourse at O(1) amortized).

Deletion flow per the paper: the graph deletions hit ``D_1``; each level's
``δH_ins`` (edges newly claimed by ``H_i``) are deleted from level ``i+1``'s
graph together with the graph deletions that reached it; each level's
``δH_del`` moves to ``J_i`` (unless the edge is being deleted from G).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.bundle.monotone_spanner import MonotoneDecrementalSpanner
from repro.graph.dynamic_graph import Edge, norm_edge
from repro.pram.cost import NULL_COST_MODEL, CostModel

__all__ = ["DecrementalTBundle"]


class _Level:
    __slots__ = ("spanner", "stash")

    def __init__(self, spanner: MonotoneDecrementalSpanner):
        self.spanner = spanner
        self.stash: set[Edge] = set()

    def bundle_edges(self) -> set[Edge]:
        return self.spanner.output_edges() | self.stash


class DecrementalTBundle:
    """Theorem 1.5: decremental t-bundle of O(log n)-spanners."""

    def __init__(
        self,
        n: int,
        edges: Iterable[Edge],
        t: int,
        seed: int | None = None,
        beta: float = 0.25,
        instances: int | None = None,
        cap: float | None = None,
        cost: CostModel = NULL_COST_MODEL,
    ) -> None:
        if t < 1:
            raise ValueError("t must be >= 1")
        self.n = n
        self.t = t
        self._cost = cost
        rng = np.random.default_rng(seed)
        edges = [norm_edge(u, v) for u, v in edges]
        self._graph: set[Edge] = set(edges)
        self.levels: list[_Level] = []
        remaining = sorted(self._graph)
        for _ in range(t):
            sp = MonotoneDecrementalSpanner(
                n,
                remaining,
                seed=int(rng.integers(0, 2**63 - 1)),
                beta=beta,
                instances=instances,
                cap=cap,
                cost=cost,
            )
            self.levels.append(_Level(sp))
            taken = sp.output_edges()
            remaining = sorted(set(remaining) - taken)
        self._rest: set[Edge] = set(remaining)  # G minus the bundle

    # -- queries -----------------------------------------------------------

    def bundle_edges(self) -> set[Edge]:
        """The full t-bundle ``H_1 ∪ ... ∪ H_t``."""
        out: set[Edge] = set()
        for lv in self.levels:
            out |= lv.bundle_edges()
        return out

    def level_edges(self, i: int) -> set[Edge]:
        """``H_{i+1}`` (0-indexed)."""
        return self.levels[i].bundle_edges()

    def non_bundle_edges(self) -> set[Edge]:
        """``G ∖ B`` — what the sparsifier chain samples from."""
        return set(self._rest)

    def bundle_size(self) -> int:
        """Total number of edges across all bundle levels."""
        return sum(len(lv.bundle_edges()) for lv in self.levels)

    def stretch_bound(self) -> float:
        """Worst per-level stretch guarantee (each H_i is a spanner of its level graph within this factor)."""
        return max(lv.spanner.stretch_bound() for lv in self.levels)

    @property
    def m(self) -> int:
        return len(self._graph)

    # -- updates -----------------------------------------------------------------

    def batch_delete(self, edges: Iterable[Edge]) -> tuple[set[Edge], set[Edge]]:
        """Delete graph edges; returns the net bundle delta ``(ins, dels)``."""
        edges = [norm_edge(u, v) for u, v in edges]
        deleted = set(edges)
        for e in edges:
            if e not in self._graph:
                raise KeyError(f"edge {e} not present")
            self._graph.remove(e)

        net: dict[Edge, int] = {}

        def bump(e: Edge, d: int) -> None:
            c = net.get(e, 0) + d
            if c == 0:
                net.pop(e, None)
            else:
                net[e] = c

        # cascade through the levels
        pending_del = list(edges)
        for lv in self.levels:
            sp = lv.spanner
            # graph deletions that reached this level = those present in
            # this level's graph (plus the edges claimed by the previous
            # level's spanner, already merged into pending_del).
            level_del = [e for e in pending_del if e in sp]
            ins_i, dels_i = sp.batch_delete(level_del) if level_del else (
                set(), set()
            )
            # spanner insertions: newly claimed by H_i -> delete from the
            # next level's graph; they also enter the bundle (unless they
            # were already parked in J_i, in which case they just move
            # back into the maintained spanner).
            for e in ins_i:
                if e in lv.stash:
                    lv.stash.remove(e)
                else:
                    bump(e, +1)
            # spanner deletions: leave D_i's spanner; park in J_i unless the
            # edge left the graph entirely.
            for e in dels_i:
                if e in deleted:
                    bump(e, -1)
                else:
                    lv.stash.add(e)
            # stash cleanup for true deletions
            for e in level_del:
                if e in lv.stash:
                    lv.stash.remove(e)
                    bump(e, -1)
            pending_del = [
                e for e in pending_del if e not in ins_i
            ] + sorted(ins_i)
        # edges that fell through every level update the rest set
        for e in pending_del:
            if e in self._rest:
                self._rest.remove(e)
        ins = {e for e, c in net.items() if c > 0}
        dels = {e for e, c in net.items() if c < 0}
        return ins, dels

    # -- invariants (tests) ----------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify the chained-spanner property of every level (tests)."""
        from repro.verify.stretch import is_spanner

        seen: set[Edge] = set()
        graph = set(self._graph)
        for i, lv in enumerate(self.levels):
            lv.spanner.check_invariants()
            h_i = lv.bundle_edges()
            assert not (h_i & seen), f"level {i} overlaps earlier levels"
            assert h_i <= graph, f"level {i} holds deleted edges"
            # H_i must span G minus the previous levels; D_i's own graph is
            # exactly that graph (stash edges included — they only left the
            # *maintained* spanner, not the level's graph).
            level_graph = graph - seen
            assert lv.spanner.m == len(level_graph), (
                "level graph size diverged"
            )
            assert is_spanner(
                self.n, level_graph, h_i, lv.spanner.stretch_bound()
            ), f"level {i} is not a spanner of its graph"
            seen |= h_i
        assert self._rest == graph - seen, "rest set diverged"

"""Decremental O(log n)-spanner with monotonicity (Lemma 6.4).

Algorithm 8: run ``Θ(log n)`` independent copies of the [MPX13]
exponential-shift clustering with a *constant* rate ``β`` (chosen so an
edge is cut by one clustering with probability at most 1/2) and keep only
the cluster forests.  For every edge, w.h.p. some copy keeps both endpoints
in one cluster, whose tree provides an O(log n)-hop detour — so the union
of forests is an O(log n)-spanner with O(n log n) edges.

Unlike Lemma 3.3 there are no inter-cluster edges (and no cluster index is
needed beyond what the priority tags already maintain), which is what gives
the *monotonicity* property: the total churn ``Σ|δH|`` over a full deletion
run is Õ(n), independent of m — the property Theorem 1.5's bundles rely on.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.graph.dynamic_graph import Edge, norm_edge
from repro.pram.cost import NULL_COST_MODEL, CostModel
from repro.spanner.shift_clustering import ShiftedClustering, sample_shifts

__all__ = ["MonotoneDecrementalSpanner"]


class MonotoneDecrementalSpanner:
    """Lemma 6.4 structure: union of per-instance cluster forests.

    Parameters
    ----------
    beta:
        Exponential-shift rate; the per-instance edge-cut probability is
        about ``1 - e^{-beta}`` (≈ 0.22 at the default 0.25).
    instances:
        Number of independent clusterings (default ``2 ceil(log2 n) + 2``).
    cap:
        Shift cap (Las Vegas resample bound); default ``2 ln(10 n) / beta``
        = O(log n), which also bounds every cluster radius.
    """

    def __init__(
        self,
        n: int,
        edges: Iterable[Edge],
        seed: int | None = None,
        beta: float = 0.25,
        instances: int | None = None,
        cap: float | None = None,
        cost: CostModel = NULL_COST_MODEL,
    ) -> None:
        if beta <= 0:
            raise ValueError("beta must be positive")
        self.n = n
        self.beta = beta
        self._cost = cost
        edges = [norm_edge(u, v) for u, v in edges]
        if instances is None:
            instances = 2 * math.ceil(math.log2(max(n, 2))) + 2
        if cap is None:
            cap = 2.0 * math.log(10 * max(n, 2)) / beta
        self.cap = cap
        rng = np.random.default_rng(seed)
        self._graph: set[Edge] = set(edges)
        self._instances: list[ShiftedClustering] = []
        for _ in range(max(1, instances)):
            deltas = sample_shifts(n, beta=beta, cap=cap, rng=rng)
            self._instances.append(
                ShiftedClustering(n, edges, deltas, cost=cost)
            )
        self._span: dict[Edge, int] = {}
        for sc in self._instances:
            for e in sc.tree_edges():
                self._span[e] = self._span.get(e, 0) + 1
        # monotonicity instrumentation
        self.total_recourse = 0

    # -- queries -----------------------------------------------------------

    def output_edges(self) -> set[Edge]:
        """The maintained spanner (union of the instance forests)."""
        return set(self._span)

    spanner_edges = output_edges

    def spanner_size(self) -> int:
        """Number of edges currently in the spanner."""
        return len(self._span)

    def stretch_bound(self) -> float:
        """Within a cluster both endpoints reach the center in at most
        ``cap + 1`` hops (tree depth ≤ shift cap)."""
        return 2.0 * (self.cap + 1)

    @property
    def num_instances(self) -> int:
        return len(self._instances)

    def __contains__(self, edge: Edge) -> bool:
        return norm_edge(*edge) in self._graph

    @property
    def m(self) -> int:
        return len(self._graph)

    # -- updates -----------------------------------------------------------------

    def batch_delete(self, edges: Iterable[Edge]) -> tuple[set[Edge], set[Edge]]:
        """Delete a batch from the graph; returns the net ``(ins, dels)``
        of the maintained spanner."""
        edges = [norm_edge(u, v) for u, v in edges]
        for e in edges:
            if e not in self._graph:
                raise KeyError(f"edge {e} not present")
            self._graph.remove(e)
        net: dict[Edge, int] = {}

        def bump(e: Edge, d: int) -> None:
            c = net.get(e, 0) + d
            if c == 0:
                net.pop(e, None)
            else:
                net[e] = c

        with self._cost.parallel() as par:
            for sc in self._instances:
                with par.task():
                    tree_changes, _ = sc.batch_delete(edges)
                    for ch in tree_changes:
                        if ch.old is not None:
                            cnt = self._span[ch.old]
                            if cnt == 1:
                                del self._span[ch.old]
                                bump(ch.old, -1)
                            else:
                                self._span[ch.old] = cnt - 1
                        if ch.new is not None:
                            cnt = self._span.get(ch.new, 0)
                            self._span[ch.new] = cnt + 1
                            if cnt == 0:
                                bump(ch.new, +1)
        ins = {e for e, c in net.items() if c > 0}
        dels = {e for e, c in net.items() if c < 0}
        self.total_recourse += len(ins) + len(dels)
        return ins, dels

    # -- invariants (tests) --------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify forest refcounts against the instances (tests)."""
        want: dict[Edge, int] = {}
        for sc in self._instances:
            forest = sc.tree_edges()
            assert forest <= self._graph
            for e in forest:
                want[e] = want.get(e, 0) + 1
        assert want == self._span, "forest refcounts diverged"

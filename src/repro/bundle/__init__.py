"""Monotone decremental spanners (Lemma 6.4) and t-bundles (Theorem 1.5)."""

from repro.bundle.monotone_spanner import MonotoneDecrementalSpanner
from repro.bundle.tbundle import DecrementalTBundle

__all__ = ["DecrementalTBundle", "MonotoneDecrementalSpanner"]

"""Workload (update-stream) generators for benchmarks and examples."""

from repro.workloads.streams import (
    OP_DELETE,
    OP_INSERT,
    UpdateBatch,
    Workload,
    churn_stream,
    deletion_stream,
    insertion_stream,
    mixed_stream,
    request_stream,
    sliding_window_stream,
)

__all__ = [
    "OP_DELETE",
    "OP_INSERT",
    "UpdateBatch",
    "Workload",
    "churn_stream",
    "deletion_stream",
    "insertion_stream",
    "mixed_stream",
    "request_stream",
    "sliding_window_stream",
]

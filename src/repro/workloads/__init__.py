"""Workload (update-stream) generators for benchmarks and examples."""

from repro.workloads.streams import (
    UpdateBatch,
    Workload,
    churn_stream,
    deletion_stream,
    insertion_stream,
    mixed_stream,
    sliding_window_stream,
)

__all__ = [
    "UpdateBatch",
    "Workload",
    "churn_stream",
    "deletion_stream",
    "insertion_stream",
    "mixed_stream",
    "sliding_window_stream",
]

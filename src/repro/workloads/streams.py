"""Update-stream workload generators for the benchmark harness.

A workload is an initial edge list plus a sequence of
:class:`UpdateBatch` es.  All generators are seeded and never emit
duplicate insertions or deletions of absent edges, so they can drive any of
the dynamic structures directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from repro.graph.dynamic_graph import Edge, norm_edge
from repro.graph.generators import gnm_random_graph

__all__ = [
    "OP_INSERT",
    "OP_DELETE",
    "UpdateBatch",
    "Workload",
    "deletion_stream",
    "insertion_stream",
    "mixed_stream",
    "sliding_window_stream",
    "churn_stream",
    "request_stream",
]

#: Canonical op names for pending-operation sequences (see
#: :meth:`UpdateBatch.coalesce` and :mod:`repro.service.queue`).
OP_INSERT = "insert"
OP_DELETE = "delete"


@dataclass
class UpdateBatch:
    insertions: list[Edge] = field(default_factory=list)
    deletions: list[Edge] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.insertions) + len(self.deletions)

    @classmethod
    def coalesce(
        cls, pending_ops: Iterable[tuple[str, Edge]]
    ) -> "UpdateBatch":
        """Fold an ordered ``(op, edge)`` sequence into one minimal batch.

        This is the canonical coalescing routine shared by the workload
        generators and the serving queue (:mod:`repro.service.queue`).  Per
        edge, ops fold left-to-right:

        * duplicate ops dedupe (``insert; insert`` → one insert),
        * an insert followed by a delete cancels to nothing,
        * a delete followed by an insert becomes a delete + re-insert (the
          edge lands in *both* lists, which :meth:`Workload.replay` applies
          deletions-first, so the batch stays legal).

        If the input sequence is sequentially legal against some edge set
        ``P`` (never deletes an absent edge, never inserts a present one),
        the coalesced batch is legal against ``P`` too.
        """
        # per-edge net state: +1 insert, -1 delete, 2 delete-then-reinsert
        state: dict[Edge, int] = {}
        for op, edge in pending_ops:
            s = state.get(edge)
            if op == OP_INSERT:
                if s is None:
                    state[edge] = +1
                elif s == -1:
                    state[edge] = 2
                # +1 or 2: duplicate insert dedupes
            elif op == OP_DELETE:
                if s is None:
                    state[edge] = -1
                elif s == +1:
                    del state[edge]  # insert + delete cancel
                elif s == 2:
                    state[edge] = -1  # the re-insert cancels
                # -1: duplicate delete dedupes
            else:
                raise ValueError(f"unknown op {op!r}")
        return cls(
            insertions=[e for e, s in state.items() if s in (+1, 2)],
            deletions=[e for e, s in state.items() if s in (-1, 2)],
        )


@dataclass
class Workload:
    """Initial graph + update batches (with replay helper for oracles)."""

    n: int
    initial_edges: list[Edge]
    batches: list[UpdateBatch]

    @property
    def total_updates(self) -> int:
        return sum(b.size for b in self.batches)

    def replay(self) -> Iterator[tuple[UpdateBatch, set[Edge]]]:
        """Yield ``(batch, edge set after applying it)``."""
        current = set(self.initial_edges)
        for batch in self.batches:
            for e in batch.deletions:
                if e not in current:
                    raise ValueError(f"deletion of absent edge {e}")
                current.remove(e)
            for e in batch.insertions:
                if e in current:
                    raise ValueError(f"duplicate insertion {e}")
                current.add(e)
            yield batch, set(current)


def deletion_stream(
    n: int, m: int, batch_size: int, seed: int | None = None,
    fraction: float = 1.0,
) -> Workload:
    """Delete a random ``fraction`` of a G(n, m) graph in fixed batches."""
    rng = np.random.default_rng(seed)
    edges = gnm_random_graph(n, m, seed=None if seed is None else seed + 1)
    order = [edges[i] for i in rng.permutation(len(edges))]
    # round half-up, and never truncate a positive fraction of a nonempty
    # graph down to an empty workload
    take = int(math.floor(len(order) * fraction + 0.5))
    if take == 0 and fraction > 0 and order:
        take = 1
    order = order[:take]
    batches = [
        UpdateBatch(deletions=order[i : i + batch_size])
        for i in range(0, len(order), batch_size)
    ]
    return Workload(n, edges, batches)


def insertion_stream(
    n: int, m: int, batch_size: int, seed: int | None = None
) -> Workload:
    """Start empty; insert a G(n, m) graph in fixed batches."""
    rng = np.random.default_rng(seed)
    edges = gnm_random_graph(n, m, seed=None if seed is None else seed + 1)
    order = [edges[i] for i in rng.permutation(len(edges))]
    batches = [
        UpdateBatch(insertions=order[i : i + batch_size])
        for i in range(0, len(order), batch_size)
    ]
    return Workload(n, [], batches)


def mixed_stream(
    n: int,
    m: int,
    batch_size: int,
    num_batches: int,
    seed: int | None = None,
    insert_prob: float = 0.5,
) -> Workload:
    """Keep ~m edges live while randomly inserting/deleting per batch."""
    rng = np.random.default_rng(seed)
    edges = gnm_random_graph(n, m, seed=None if seed is None else seed + 1)
    present = set(edges)
    batches: list[UpdateBatch] = []
    max_m = n * (n - 1) // 2
    for _ in range(num_batches):
        batch = UpdateBatch()
        batch_set_ins: set[Edge] = set()
        for _ in range(batch_size):
            do_insert = rng.random() < insert_prob
            if do_insert and len(present) < max_m:
                while True:
                    u = int(rng.integers(0, n))
                    v = int(rng.integers(0, n))
                    if u == v:
                        continue
                    e = norm_edge(u, v)
                    if e not in present and e not in batch_set_ins:
                        break
                batch.insertions.append(e)
                batch_set_ins.add(e)
                present.add(e)
            else:
                # never delete an edge inserted in this same batch (updates
                # apply deletions first)
                pool = sorted(present - batch_set_ins)
                if not pool:
                    continue
                e = pool[int(rng.integers(0, len(pool)))]
                present.remove(e)
                batch.deletions.append(e)
        batches.append(batch)
    return Workload(n, edges, batches)


def sliding_window_stream(
    n: int,
    window: int,
    num_batches: int,
    batch_size: int,
    seed: int | None = None,
) -> Workload:
    """Streaming-graph model: every batch inserts ``batch_size`` fresh
    random edges and expires the oldest ones beyond the window (the classic
    "recent-interactions graph" workload from the paper's motivation)."""
    rng = np.random.default_rng(seed)
    present: set[Edge] = set()
    fifo: list[Edge] = []
    batches: list[UpdateBatch] = []
    max_m = n * (n - 1) // 2
    for _ in range(num_batches):
        batch = UpdateBatch()
        for _ in range(batch_size):
            if len(present) >= max_m:
                break
            while True:
                u = int(rng.integers(0, n))
                v = int(rng.integers(0, n))
                if u == v:
                    continue
                e = norm_edge(u, v)
                if e not in present:
                    break
            present.add(e)
            fifo.append(e)
            batch.insertions.append(e)
        while len(fifo) > window:
            e = fifo.pop(0)
            present.remove(e)
            batch.deletions.append(e)
        # a batch inserting more than the window holds expires edges it
        # inserted itself; fold those insert+delete pairs away (batches
        # apply deletions first, so they would be illegal otherwise)
        batches.append(UpdateBatch.coalesce(
            [(OP_INSERT, e) for e in batch.insertions]
            + [(OP_DELETE, e) for e in batch.deletions]
        ))
    return Workload(n, [], batches)


def churn_stream(
    n: int,
    m: int,
    churn_fraction: float,
    num_batches: int,
    seed: int | None = None,
) -> Workload:
    """Each batch replaces a fraction of the live edges (delete + insert
    the same count) — models link churn in an overlay network."""
    rng = np.random.default_rng(seed)
    edges = gnm_random_graph(n, m, seed=None if seed is None else seed + 1)
    present = set(edges)
    batches: list[UpdateBatch] = []
    per_batch = max(1, int(m * churn_fraction))
    max_m = n * (n - 1) // 2
    for _ in range(num_batches):
        batch = UpdateBatch()
        pool = sorted(present)
        idx = rng.permutation(len(pool))[:per_batch]
        for i in idx:
            batch.deletions.append(pool[int(i)])
            present.remove(pool[int(i)])
        added = 0
        # this batch's deletions are barred from re-insertion, so the pool
        # of insertable edges is max_m - |present| - |deletions|; counting
        # only len(present) here used to spin forever on near-complete
        # graphs once every absent edge was deleted-this-batch
        while (
            added < per_batch
            and len(present) + len(batch.deletions) < max_m
        ):
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n))
            if u == v:
                continue
            e = norm_edge(u, v)
            if e in present or e in batch.deletions:
                continue
            present.add(e)
            batch.insertions.append(e)
            added += 1
        batches.append(batch)
    return Workload(n, edges, batches)


def request_stream(
    n: int,
    m: int,
    num_requests: int,
    seed: int | None = None,
    query_prob: float = 0.1,
    insert_prob: float = 0.5,
    churn_prob: float = 0.15,
    dup_prob: float = 0.02,
) -> tuple[list[Edge], list[tuple[str, tuple[int, int]]]]:
    """Client-request stream for the serving engine (:mod:`repro.service`).

    Returns ``(initial_edges, requests)`` where each request is one of
    ``("insert", edge)``, ``("delete", edge)``, or ``("query", (u, v))``.
    Update requests are sequentially legal against the evolving edge set
    (so a serving queue that applies them in order never sees an illegal
    op), and with probability ``churn_prob`` a request targets an edge
    touched by one of the last few updates — deliberately creating the
    insert/delete bounce pairs that update coalescing collapses.  With
    probability ``dup_prob`` an update is delivered twice back-to-back
    (client retry), exercising the queue's dedup path.
    """
    rng = np.random.default_rng(seed)
    edges = gnm_random_graph(n, m, seed=None if seed is None else seed + 1)
    present = set(edges)
    recent: list[Edge] = []
    requests: list[tuple[str, tuple[int, int]]] = []
    max_m = n * (n - 1) // 2
    for _ in range(num_requests):
        r = rng.random()
        if r < query_prob:
            u = int(rng.integers(0, n))
            v = int(rng.integers(0, n))
            requests.append(("query", (u, v)))
            continue
        edge: Edge | None = None
        if recent and rng.random() < churn_prob:
            edge = recent[int(rng.integers(0, len(recent)))]
            op = OP_DELETE if edge in present else OP_INSERT
        elif rng.random() < insert_prob and len(present) < max_m:
            while True:
                u = int(rng.integers(0, n))
                v = int(rng.integers(0, n))
                if u == v:
                    continue
                edge = norm_edge(u, v)
                if edge not in present:
                    break
            op = OP_INSERT
        elif present:
            pool = sorted(present)
            edge = pool[int(rng.integers(0, len(pool)))]
            op = OP_DELETE
        else:
            continue
        assert edge is not None
        if op == OP_INSERT:
            present.add(edge)
        else:
            present.remove(edge)
        recent.append(edge)
        if len(recent) > 16:
            recent.pop(0)
        requests.append((op, edge))
        if rng.random() < dup_prob:
            requests.append((op, edge))  # duplicate delivery
    return edges, requests

"""Work/depth PRAM cost model and batch primitives."""

from repro.pram.cost import (
    NULL_COST_MODEL,
    Cost,
    CostModel,
    ParallelScope,
    brent_time,
    log2ceil,
)
from repro.pram.primitives import (
    pfilter,
    pmap,
    pmax_index,
    preduce,
    pscan,
    psemisort,
    psort,
)

__all__ = [
    "Cost",
    "CostModel",
    "ParallelScope",
    "NULL_COST_MODEL",
    "brent_time",
    "log2ceil",
    "pfilter",
    "pmap",
    "pmax_index",
    "preduce",
    "pscan",
    "psemisort",
    "psort",
]

"""Classic PRAM batch primitives with work/depth charging.

The paper's algorithms freely use the standard parallel toolbox — prefix
sums, filtering/compaction, parallel sort ([PP01] implies an O(n log n)
work, O(log n) depth sort), reduction, and semisort/grouping.  This module
implements them sequentially with the canonical charges, so higher-level
code (and users extending the library) can stay inside the cost model.

=============  ======================  ==============
primitive      work                    depth
=============  ======================  ==============
preduce        O(n)                    O(log n)
pscan          O(n)                    O(log n)
pfilter        O(n)                    O(log n)
pmap           O(n) (+ body)           O(1) (+ body)
psort          O(n log n)              O(log n)  [PP01]
psemisort      O(n) expected           O(log* n) [GMV91]
pmax_index     O(n)                    O(log n)
=============  ======================  ==============
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro.pram.cost import NULL_COST_MODEL, CostModel, log2ceil

T = TypeVar("T")
U = TypeVar("U")

__all__ = [
    "preduce",
    "pscan",
    "pfilter",
    "pmap",
    "psort",
    "psemisort",
    "pmax_index",
]


def _charge(cost: CostModel, n: int, work_factor: int = 1,
            depth: int | None = None) -> None:
    n = max(n, 1)
    cost.charge(
        work=n * work_factor,
        depth=log2ceil(n) if depth is None else depth,
    )


def preduce(
    items: Sequence[T],
    op: Callable[[T, T], T],
    identity: T,
    cost: CostModel = NULL_COST_MODEL,
) -> T:
    """Parallel reduction: O(n) work, O(log n) depth."""
    _charge(cost, len(items))
    acc = identity
    for x in items:
        acc = op(acc, x)
    return acc


def pscan(
    items: Sequence[T],
    op: Callable[[T, T], T],
    identity: T,
    cost: CostModel = NULL_COST_MODEL,
) -> tuple[list[T], T]:
    """Exclusive prefix scan: returns (prefixes, total).

    ``prefixes[i] = op(items[0], ..., items[i-1])``; O(n) work, O(log n)
    depth (Blelloch scan).
    """
    _charge(cost, len(items), work_factor=2)
    out: list[T] = []
    acc = identity
    for x in items:
        out.append(acc)
        acc = op(acc, x)
    return out, acc


def pfilter(
    items: Sequence[T],
    keep: Callable[[T], bool],
    cost: CostModel = NULL_COST_MODEL,
) -> list[T]:
    """Parallel compaction (filter + pack): O(n) work, O(log n) depth."""
    _charge(cost, len(items), work_factor=2)
    return [x for x in items if keep(x)]


def pmap(
    items: Sequence[T],
    fn: Callable[[T], U],
    cost: CostModel = NULL_COST_MODEL,
) -> list[U]:
    """Parallel map over a flat array: O(n) work, O(1) depth (plus whatever
    ``fn`` itself charges — run it under ``cost.parallel()`` if it does)."""
    cost.charge(work=max(len(items), 1), depth=1)
    return [fn(x) for x in items]


def psort(
    items: Iterable[T],
    key: Callable[[T], Any] | None = None,
    cost: CostModel = NULL_COST_MODEL,
) -> list[T]:
    """Parallel sort à la [PP01]: O(n log n) work, O(log n) depth."""
    items = list(items)
    n = max(len(items), 1)
    cost.charge(work=n * log2ceil(n), depth=log2ceil(n))
    return sorted(items, key=key)


def psemisort(
    items: Sequence[T],
    key: Callable[[T], Any],
    cost: CostModel = NULL_COST_MODEL,
) -> dict[Any, list[T]]:
    """Group by key (semisort): O(n) expected work, O(log* n) depth via the
    [GMV91] hash table."""
    cost.charge_hash_op(len(items))
    out: dict[Any, list[T]] = {}
    for x in items:
        out.setdefault(key(x), []).append(x)
    return out


def pmax_index(
    items: Sequence[T],
    key: Callable[[T], Any] | None = None,
    cost: CostModel = NULL_COST_MODEL,
) -> int:
    """Index of the maximum element: O(n) work, O(log n) depth.

    Raises ValueError on an empty sequence.
    """
    if not items:
        raise ValueError("pmax_index of empty sequence")
    _charge(cost, len(items))
    if key is None:
        return max(range(len(items)), key=items.__getitem__)
    return max(range(len(items)), key=lambda i: key(items[i]))

"""Work/depth cost model for the PRAM algorithms in this package.

The paper analyses every algorithm in the standard work/depth framework
[Ble96]: *work* is the total number of primitive operations, *depth* is the
length of the longest chain of sequentially dependent operations.  Python's
GIL prevents us from running the fine-grained shared-memory parallelism the
paper assumes, so instead of executing on ``p`` processors we execute
sequentially and *account* for parallelism explicitly:

* every primitive operation charges ``work`` and ``depth`` to the ambient
  :class:`CostModel`,
* logically-parallel loops are wrapped in a :meth:`CostModel.parallel`
  region; inside it, each iteration runs in its own :meth:`ParallelScope.task`
  frame, and on exit the region contributes ``sum`` of the branch works but
  only ``max`` of the branch depths to the parent frame.

This makes the paper's asymptotic claims directly measurable: the benchmark
harness records ``(work, depth)`` per batch and checks the claimed scaling
shapes.  Brent's bound [Bre74] converts the pair into a simulated runtime for
any processor count: ``time(p) <= work/p + depth``.

Charging and execution are decoupled: by default every region runs inline
(sequentially), but :meth:`CostModel.set_backend` installs an execution
backend from :mod:`repro.parallel` through which :meth:`CostModel.pfor` /
:meth:`ParallelScope.map` branches actually execute — on worker processes
for :class:`repro.parallel.ProcessPoolBackend` — while merging per-branch
charges with the identical sum/max rule, so charged totals never depend on
the backend.

Example
-------
>>> cm = CostModel()
>>> with cm.frame() as fr:
...     with cm.parallel() as par:
...         for _ in range(8):
...             with par.task():
...                 cm.charge(work=3, depth=3)
>>> fr.work, fr.depth
(24, 3)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

T = TypeVar("T")
U = TypeVar("U")

__all__ = [
    "Cost",
    "CostModel",
    "ParallelScope",
    "NULL_COST_MODEL",
    "brent_time",
    "log2ceil",
]


def log2ceil(n: int) -> int:
    """``ceil(log2(n))`` with the convention ``log2ceil(n) >= 1`` for n >= 1.

    Used throughout as the unit charge for balanced-tree operations on
    structures of size ``n``.
    """
    if n <= 2:
        return 1
    return (n - 1).bit_length()


@dataclass
class Cost:
    """An accumulated (work, depth) pair."""

    work: int = 0
    depth: int = 0

    def __iter__(self) -> Iterator[int]:
        yield self.work
        yield self.depth

    def as_tuple(self) -> tuple[int, int]:
        """``(work, depth)`` tuple view."""
        return (self.work, self.depth)


@dataclass
class _Frame:
    work: int = 0
    depth: int = 0


class _Task:
    """Context manager for one parallel branch (hand-rolled: these sit on
    the hottest path, and generator-based context managers cost ~3x)."""

    __slots__ = ("_scope", "_frame")

    def __init__(self, scope: "ParallelScope") -> None:
        self._scope = scope

    def __enter__(self) -> None:
        self._frame = _Frame()
        self._scope._model._stack.append(self._frame)

    def __exit__(self, *exc) -> None:
        self._scope._model._stack.pop()
        frame = self._frame
        self._scope._work += frame.work
        if frame.depth > self._scope._max_depth:
            self._scope._max_depth = frame.depth


class ParallelScope:
    """A logically-parallel region; see :meth:`CostModel.parallel`."""

    __slots__ = ("_model", "_work", "_max_depth")

    def __init__(self, model: "CostModel") -> None:
        self._model = model
        self._work: int = 0
        self._max_depth: int = 0

    def task(self) -> _Task:
        """Run one parallel branch.

        The branch's work adds to the region total; its depth only raises the
        region's max.
        """
        return _Task(self)

    def map(self, items: Iterable[T], fn: Callable[[T], U]) -> list[U]:
        """Apply ``fn`` to each item, each call in its own parallel task.

        When an execution backend is installed on the model (see
        :meth:`CostModel.set_backend`), the map is routed through it so the
        branches may *actually* run on worker processes; the merged charges
        are identical either way (work sums, depth maxes).
        """
        backend = self._model._exec_backend
        if backend is not None:
            return backend.map_scope(self._model, self, items, fn)
        out: list[U] = []
        for item in items:
            with self.task():
                out.append(fn(item))
        return out

    def absorb(self, work: int, depth: int) -> None:
        """Merge the charges of one externally-executed branch.

        Equivalent to a :meth:`task` whose body charged exactly
        ``(work, depth)``: the branch's work adds to the region total and
        its depth raises the region max.  Execution backends use this to
        fold per-worker cost-model totals back into the parent region;
        because the merge is a commutative sum/max, the result is
        deterministic regardless of task completion order.
        """
        self._work += work
        if depth > self._max_depth:
            self._max_depth = depth

    def _total(self) -> tuple[int, int]:
        return (self._work, self._max_depth)


class CostModel:
    """Mutable accumulator of work/depth along the current call path.

    A stack of frames mirrors the (simulated) fork/join structure.  The root
    frame holds the grand totals; :meth:`frame` scopes let callers measure
    sub-computations (e.g. one update batch).
    """

    enabled: bool = True

    #: Optional execution backend (see :mod:`repro.parallel`).  ``None`` —
    #: the default, and the only mode the charge pins in
    #: ``BENCH_hotpath.json`` are recorded under — keeps the historical
    #: inline execution.  A class attribute so that existing call sites
    #: (and :data:`NULL_COST_MODEL`) need no ``__init__`` change.
    _exec_backend = None

    def __init__(self) -> None:
        self._root = _Frame()
        self._stack: list[_Frame] = [self._root]

    def set_backend(self, backend) -> None:
        """Install (or with ``None``, remove) an execution backend.

        Subsequent :meth:`pfor` / :meth:`ParallelScope.map` calls route
        their branches through ``backend`` (any object implementing the
        :class:`repro.parallel.ExecutionBackend` contract).  Charged totals
        are unchanged by construction: the backend merges each branch's
        ``(work, depth)`` with the same sum/max rule the inline path uses.
        """
        self._exec_backend = backend

    @property
    def backend(self):
        """The installed execution backend, or ``None`` (inline)."""
        return self._exec_backend

    # -- charging ---------------------------------------------------------

    def charge(self, work: int = 1, depth: int | None = None) -> None:
        """Charge ``work`` units of work and ``depth`` of sequential depth.

        ``depth`` defaults to ``work`` (a purely sequential computation).
        """
        if not self.enabled:
            return
        top = self._stack[-1]
        top.work += work
        top.depth += work if depth is None else depth

    def charge_many(self, work: int, depth: int) -> None:
        """Charge the aggregate cost of many primitive operations in one
        call.

        Semantically equivalent to issuing the operations individually and
        summing; callers on hot paths use this to replace ``n`` separate
        :meth:`charge` calls (each a Python attribute lookup + call) with a
        single pre-summed charge.  Unlike :meth:`charge`, ``depth`` is
        required: an aggregate has no sensible sequential default.
        """
        if not self.enabled:
            return
        top = self._stack[-1]
        top.work += work
        top.depth += depth

    def pfor_cost(
        self, n: int, per_item_work: int, depth: int | None = None
    ) -> None:
        """Charge a whole parallel-for round in O(1) Python calls.

        Equivalent to a :meth:`parallel` region with ``n`` tasks, each
        charging ``per_item_work`` work at ``depth`` depth (default:
        ``per_item_work``): the region contributes ``n * per_item_work``
        work and ``max`` over branch depths — i.e. ``depth`` when ``n > 0``
        and 0 otherwise — to the current frame.  Use when every branch of a
        parallel loop performs an identical uniform charge, so entering
        ``n`` task context managers would only re-derive this closed form.
        """
        if not self.enabled or n <= 0:
            return
        top = self._stack[-1]
        top.work += n * per_item_work
        top.depth += per_item_work if depth is None else depth

    def charge_tree_op(self, size: int, count: int = 1) -> None:
        """Charge ``count`` balanced-tree operations on a size-``size``
        structure: O(log size) work each, O(log size) combined depth (the
        ``count`` ops are presumed batched in parallel)."""
        if not self.enabled:
            return
        c = log2ceil(max(size, 2))
        top = self._stack[-1]
        top.work += c * count
        top.depth += c

    def charge_hash_op(self, count: int = 1) -> None:
        """Charge ``count`` hash-table ops: O(1) work each, O(log* n) ~ O(1)
        depth for the whole parallel batch [GMV91].

        ``count <= 0`` is a no-op: an empty batch performs no hash ops, so
        it must not contribute the batch's unit of depth (mirrors
        :meth:`pfor_cost`'s ``n <= 0`` contract)."""
        if not self.enabled or count <= 0:
            return
        top = self._stack[-1]
        top.work += count
        top.depth += 1

    # -- structure --------------------------------------------------------

    def parallel(self) -> "_ParallelRegion":
        """Open a parallel region.

        All :meth:`ParallelScope.task` branches created inside run logically
        in parallel: work adds, depth maxes.
        """
        return _ParallelRegion(self)

    def frame(self) -> "_FrameRegion":
        """Measure the cost of a sub-computation.

        The measured cost also propagates to the enclosing frame (sequential
        composition).
        """
        return _FrameRegion(self)

    def pfor(
        self,
        items: Sequence[T] | Iterable[T],
        fn: Callable[[T], U],
    ) -> list[U]:
        """``parallel-for``: run ``fn`` over ``items``, one task each."""
        with self.parallel() as par:
            return par.map(items, fn)

    # -- reading ----------------------------------------------------------

    @property
    def work(self) -> int:
        return self._root.work

    @property
    def depth(self) -> int:
        return self._root.depth

    def snapshot(self) -> Cost:
        """Copy of the current totals as a :class:`Cost`."""
        return Cost(self._root.work, self._root.depth)

    def reset(self) -> None:
        """Zero the accumulated totals.

        Raises :class:`RuntimeError` if any ``frame()`` / ``parallel()``
        region is still open: silently dropping open frames used to leave
        the region's ``__exit__`` popping the *root* frame, so the next
        ``charge()`` died with an ``IndexError`` far from the real culprit.
        Reset only between measurements, never inside a region.
        """
        if len(self._stack) > 1:
            raise RuntimeError(
                f"CostModel.reset() inside {len(self._stack) - 1} open "
                "frame()/parallel() region(s); exit them first"
            )
        self._root.work = 0
        self._root.depth = 0


class _ParallelRegion:
    """``with``-target of :meth:`CostModel.parallel` (hand-rolled for
    speed; exceptions propagate, with whatever was tallied so far folded
    into the parent frame)."""

    __slots__ = ("_model", "_scope")

    def __init__(self, model: CostModel) -> None:
        self._model = model

    def __enter__(self) -> ParallelScope:
        self._scope = ParallelScope(self._model)
        return self._scope

    def __exit__(self, *exc) -> None:
        if not self._model.enabled:
            return
        work, depth = self._scope._total()
        top = self._model._stack[-1]
        top.work += work
        top.depth += depth


class _FrameRegion:
    """``with``-target of :meth:`CostModel.frame`."""

    __slots__ = ("_model", "_frame", "_cost")

    def __init__(self, model: CostModel) -> None:
        self._model = model

    def __enter__(self) -> Cost:
        self._frame = _Frame()
        self._model._stack.append(self._frame)
        self._cost = Cost()
        return self._cost

    def __exit__(self, *exc) -> None:
        self._model._stack.pop()
        self._cost.work = self._frame.work
        self._cost.depth = self._frame.depth
        top = self._model._stack[-1]
        top.work += self._frame.work
        top.depth += self._frame.depth


class _NullCostModel(CostModel):
    """A cost model that records nothing; used as the cheap default."""

    enabled = False


#: Shared do-nothing cost model; pass a fresh :class:`CostModel` to measure.
NULL_COST_MODEL = _NullCostModel()


def brent_time(cost: Cost, processors: int) -> float:
    """Brent's theorem [Bre74]: greedy-schedule runtime upper bound
    ``work/p + depth`` for ``p`` processors.

    Raises :class:`ValueError` for ``processors <= 0`` — a zero processor
    count would otherwise divide by zero, and a negative one would return a
    nonsensical negative "time".
    """
    if processors <= 0:
        raise ValueError(
            f"processors must be >= 1, got {processors!r}"
        )
    return cost.work / processors + cost.depth

"""Differential fuzzing campaign driver.

``check_workload`` is the core oracle loop: drive one workload through one
structure and, after *every* batch, cross-check it against

(a) the :meth:`~repro.workloads.streams.Workload.replay` edge-set oracle
    (ground truth for the graph, and for the output via the maintained
    delta mirror — the same mirror the serving engine's snapshot relies
    on),
(b) a from-scratch static baseline (Baswana–Sen / incremental greedy /
    union-find, per structure), and
(c) the paper's quantitative invariants (stretch, size, recourse, and the
    PRAM depth envelope) via :mod:`repro.verify` and
    :mod:`repro.oracle.invariants`.

``run_fuzz`` runs seeded random workloads from
:mod:`repro.workloads.streams` across all registered structures, shrinks
any divergence to a minimal reproducer, and renders the campaign report.
"""

from __future__ import annotations

import time
import traceback
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

import numpy as np

from repro.oracle.adapters import STRUCTURES, make_adapter
from repro.oracle.violations import Divergence, Violation
from repro.workloads.streams import (
    UpdateBatch,
    Workload,
    churn_stream,
    deletion_stream,
    insertion_stream,
    mixed_stream,
    sliding_window_stream,
)

__all__ = ["FuzzConfig", "FuzzReport", "check_workload", "run_fuzz"]

#: Deep (expensive) checks run every this many batches, and on the last.
DEEP_EVERY = 4


def check_workload(
    structure: str,
    workload: Workload,
    params: dict[str, Any] | None = None,
    seed: int = 0,
    deep_every: int = DEEP_EVERY,
) -> Divergence | None:
    """Run ``workload`` through ``structure`` under the full oracle.

    Returns the first :class:`Divergence` found, or ``None`` when every
    batch passes every check.  Deterministic for fixed arguments.
    """
    params = dict(params or {})
    try:
        adapter = make_adapter(
            structure, workload.n, workload.initial_edges, seed=seed,
            params=params,
        )
    except Exception as exc:  # noqa: BLE001 - any crash is a finding
        return Divergence(structure, params, workload, Violation(
            "crash", f"construction raised {type(exc).__name__}: {exc}"
        ), seed=seed)

    def diverge(violation: Violation) -> Divergence:
        return Divergence(structure, params, workload, violation, seed=seed)

    mirror = set(adapter.output_edges())
    last = len(workload.batches) - 1
    for idx, (batch, graph) in enumerate(_iter_replay(workload.replay())):
        if isinstance(graph, Exception):
            return diverge(Violation(
                "illegal-workload", f"replay rejected batch {idx}: {graph}",
                batch_index=idx,
            ))
        try:
            ins, dels = adapter.apply(batch)
        except Exception as exc:  # noqa: BLE001
            return diverge(Violation(
                "crash",
                f"update raised {type(exc).__name__}: {exc}\n"
                + traceback.format_exc(limit=4),
                batch_index=idx,
            ))
        # the reported delta must be a consistent diff: the mirror a
        # consumer (e.g. the serving engine snapshot) maintains from the
        # deltas must track the structure's actual output exactly
        if ins & dels:
            return diverge(Violation(
                "delta-overlap",
                f"update returned {len(ins & dels)} edge(s) in both the "
                f"insert and delete delta",
                batch_index=idx,
            ))
        mirror -= dels
        mirror |= ins
        out = adapter.output_edges()
        if mirror != out:
            return diverge(Violation(
                "delta-drift",
                f"delta mirror drifted from output_edges(): missing "
                f"{sorted(out - mirror)[:3]}, extra "
                f"{sorted(mirror - out)[:3]}",
                batch_index=idx,
            ))
        deep = (idx % max(deep_every, 1) == 0) or idx == last
        viols = adapter.violations(graph, idx, deep=deep)
        if viols:
            return diverge(viols[0])
    return None


def _iter_replay(replay) -> Iterable[tuple[UpdateBatch, Any]]:
    """Iterate a replay generator, yielding the exception in-band if one
    batch is illegal (so the caller can attribute it to an index)."""
    while True:
        try:
            yield next(replay)
        except StopIteration:
            return
        except ValueError as exc:
            yield None, exc
            return


# -- campaign ----------------------------------------------------------------


@dataclass
class FuzzConfig:
    """Knobs for one fuzz campaign (all defaults CI-safe)."""

    seeds: int = 20
    structures: tuple[str, ...] = tuple(sorted(STRUCTURES))
    time_budget: float | None = None      # seconds, soft cap per campaign
    max_n: int = 40
    shrink: bool = True
    deep_every: int = DEEP_EVERY


@dataclass
class StructureStats:
    structure: str
    workloads: int = 0
    batches: int = 0
    ops: int = 0
    divergences: list[Divergence] = field(default_factory=list)


@dataclass
class FuzzReport:
    config: FuzzConfig
    stats: dict[str, StructureStats] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def divergences(self) -> list[Divergence]:
        return [d for s in self.stats.values() for d in s.divergences]

    @property
    def ok(self) -> bool:
        return not self.divergences

    def rows(self) -> list[dict[str, Any]]:
        """Table rows for :func:`repro.harness.format_table`."""
        return [
            {
                "structure": s.structure,
                "workloads": s.workloads,
                "batches": s.batches,
                "ops": s.ops,
                "divergences": len(s.divergences),
            }
            for s in self.stats.values()
        ]


def _random_workload(
    structure: str, rng: np.random.Generator, max_n: int
) -> tuple[Workload, dict[str, Any]]:
    """One random-but-legal workload + structure params for a fuzz seed."""
    dense = rng.random() < 0.25
    # dense graphs only at small n: they exercise saturation edge cases
    # without making the deep (BFS / baseline) checks dominate the run
    n = int(rng.integers(6, (12 if dense else max_n) + 1))
    max_m = n * (n - 1) // 2
    cap_m = max_m if dense else min(4 * n, max_m)
    m = int(rng.integers(min(n, cap_m), cap_m + 1))
    b = int(rng.integers(1, 9))
    batches = int(rng.integers(4, 13))
    seed = int(rng.integers(0, 2**31))
    deletions_only = STRUCTURES[structure].deletions_only
    kinds = (
        ("delete",) if deletions_only
        else ("delete", "insert", "mixed", "churn", "sliding")
    )
    kind = kinds[int(rng.integers(0, len(kinds)))]
    if kind == "delete":
        frac = float(rng.choice([0.1, 0.5, 1.0]))
        wl = deletion_stream(n, m, batch_size=b, seed=seed, fraction=frac)
    elif kind == "insert":
        wl = insertion_stream(n, m, batch_size=b, seed=seed)
    elif kind == "mixed":
        wl = mixed_stream(n, m, batch_size=b, num_batches=batches, seed=seed)
    elif kind == "churn":
        wl = churn_stream(n, m, churn_fraction=0.2, num_batches=batches,
                          seed=seed)
    else:
        wl = sliding_window_stream(n, window=m, num_batches=batches,
                                   batch_size=max(b, 2), seed=seed)
    params: dict[str, Any] = {}
    if structure in ("spanner", "decremental"):
        params["k"] = int(rng.integers(2, 4))
    if structure == "spanner":
        # small capacities force the Bentley-Saxe levels to engage
        params["base_capacity"] = int(rng.choice([2, 4, 8, 16]))
        if rng.random() < 0.25:
            params["restart_every"] = int(rng.integers(8, 64))
    if structure == "dynamizer":
        params["base_capacity"] = int(rng.choice([1, 2, 4, 8]))
        if rng.random() < 0.25:
            params["restart_every"] = int(rng.integers(4, 32))
    if structure == "sparsifier":
        params["t"] = int(rng.integers(1, 3))
    if structure == "ultrasparse":
        params["x"] = float(rng.choice([2.0, 3.0]))
    return wl, params


def run_fuzz(
    config: FuzzConfig,
    log: Callable[[str], None] | None = None,
) -> FuzzReport:
    """Run the campaign; shrinks every divergence before reporting it."""
    from repro.oracle.shrink import shrink_divergence

    report = FuzzReport(config=config)
    t0 = time.perf_counter()
    out_of_time = False
    for structure in config.structures:
        stats = report.stats.setdefault(
            structure, StructureStats(structure)
        )
        for i in range(config.seeds):
            if (
                config.time_budget is not None
                and time.perf_counter() - t0 > config.time_budget
            ):
                out_of_time = True
                break
            # stable per-structure stream (str hash() is salted per process)
            rng = np.random.default_rng(
                (zlib.crc32(structure.encode()) & 0xFFFF, i)
            )
            wl, params = _random_workload(structure, rng, config.max_n)
            seed = int(rng.integers(0, 2**31))
            div = check_workload(
                structure, wl, params=params, seed=seed,
                deep_every=config.deep_every,
            )
            stats.workloads += 1
            stats.batches += len(wl.batches)
            stats.ops += wl.total_updates
            if div is not None:
                if log:
                    log(f"divergence: {div}")
                if config.shrink:
                    div = shrink_divergence(div,
                                            deep_every=config.deep_every)
                    if log:
                        log(f"shrunk to: {div}")
                stats.divergences.append(div)
        if out_of_time:
            break
    report.wall_seconds = time.perf_counter() - t0
    if log and out_of_time:
        log(
            f"time budget {config.time_budget:.0f}s exhausted after "
            f"{report.wall_seconds:.1f}s — campaign truncated"
        )
    return report

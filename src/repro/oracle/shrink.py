"""Workload shrinking: reduce a divergence to a minimal reproducer.

Strategy (ddmin-flavoured, each pass validated for replay legality):

1. **Truncate** to the first divergent batch — later batches are noise.
2. **Batch bisection**: remove contiguous chunks of whole batches,
   halving the chunk size until single batches.
3. **Per-op removal**: drop individual operations inside each batch,
   re-coalescing the survivors with :meth:`UpdateBatch.coalesce` so the
   batch stays minimal and legal.
4. **Initial-edge reduction**: the same chunked removal over the initial
   edge list, then **vertex compaction** (relabel to ``0..n'-1``).

A candidate counts only if it still produces a divergence with the *same*
violation kind on the same structure; candidates whose replay is illegal
(an earlier removal orphaned a later delete) are skipped.  The whole
search is budgeted by predicate evaluations, so shrinking a pathological
case degrades to a partial shrink, never a hang.
"""

from __future__ import annotations

from typing import Callable

from repro.oracle.violations import Divergence
from repro.workloads.streams import (
    OP_DELETE,
    OP_INSERT,
    UpdateBatch,
    Workload,
)

__all__ = ["shrink_divergence", "shrink_workload"]

#: Default cap on oracle re-runs during one shrink.
DEFAULT_BUDGET = 400


def _is_legal(workload: Workload) -> bool:
    try:
        for _ in workload.replay():
            pass
    except ValueError:
        return False
    return True


def _clone(n: int, initial: list, batches: list[UpdateBatch]) -> Workload:
    return Workload(
        n,
        [tuple(e) for e in initial],
        [
            UpdateBatch(list(b.insertions), list(b.deletions))
            for b in batches
        ],
    )


def _compact_vertices(workload: Workload) -> Workload:
    """Relabel the vertices actually used to ``0..n'-1``."""
    used = sorted({
        v
        for e in workload.initial_edges for v in e
    } | {
        v
        for b in workload.batches
        for e in (*b.insertions, *b.deletions)
        for v in e
    })
    if not used:
        return Workload(1, [], list(workload.batches))
    remap = {v: i for i, v in enumerate(used)}

    def m(e):
        a, b = remap[e[0]], remap[e[1]]
        return (a, b) if a < b else (b, a)

    return Workload(
        len(used),
        [m(e) for e in workload.initial_edges],
        [
            UpdateBatch([m(e) for e in b.insertions],
                        [m(e) for e in b.deletions])
            for b in workload.batches
        ],
    )


def shrink_workload(
    workload: Workload,
    still_fails: Callable[[Workload], bool],
    budget: int = DEFAULT_BUDGET,
) -> tuple[Workload, dict[str, int]]:
    """Minimize ``workload`` under the ``still_fails`` predicate.

    Returns the smallest failing workload found plus search statistics.
    ``still_fails`` must be deterministic and is never called on an
    illegal workload.
    """
    evals = 0

    def fails(cand: Workload) -> bool:
        nonlocal evals
        if evals >= budget:
            return False
        if not _is_legal(cand):
            return False
        evals += 1
        return still_fails(cand)

    best = _clone(workload.n, workload.initial_edges, workload.batches)

    # 1+2. chunked removal over whole batches (ddmin)
    chunk = max(1, len(best.batches) // 2)
    while chunk >= 1:
        i = 0
        while i < len(best.batches):
            cand = _clone(
                best.n,
                best.initial_edges,
                best.batches[:i] + best.batches[i + chunk:],
            )
            if cand.batches != best.batches and fails(cand):
                best = cand  # keep position: the next chunk shifted in
            else:
                i += chunk
        chunk //= 2

    # 3. per-op removal, re-coalescing the survivors per batch
    for bi in range(len(best.batches) - 1, -1, -1):
        ops = (
            [(OP_DELETE, e) for e in best.batches[bi].deletions]
            + [(OP_INSERT, e) for e in best.batches[bi].insertions]
        )
        oi = 0
        while oi < len(ops):
            kept = ops[:oi] + ops[oi + 1:]
            cand_batches = list(best.batches)
            cand_batches[bi] = UpdateBatch.coalesce(kept)
            cand = _clone(best.n, best.initial_edges, cand_batches)
            if fails(cand):
                best = cand
                ops = kept
            else:
                oi += 1
        if not ops:
            cand = _clone(
                best.n, best.initial_edges,
                best.batches[:bi] + best.batches[bi + 1:],
            )
            if fails(cand):
                best = cand

    # 4. chunked removal over the initial edges, then vertex compaction
    chunk = max(1, len(best.initial_edges) // 2)
    while chunk >= 1:
        i = 0
        while i < len(best.initial_edges):
            cand = _clone(
                best.n,
                best.initial_edges[:i] + best.initial_edges[i + chunk:],
                best.batches,
            )
            if fails(cand):
                best = cand
            else:
                i += chunk
        chunk //= 2
    compacted = _compact_vertices(best)
    if compacted.n < best.n and fails(compacted):
        best = compacted

    return best, {"predicate_evals": evals, "budget": budget}


def shrink_divergence(
    div: Divergence,
    budget: int = DEFAULT_BUDGET,
    deep_every: int | None = None,
) -> Divergence:
    """Shrink a divergence found by :func:`repro.oracle.fuzz.check_workload`.

    The predicate re-runs the full oracle and matches on the violation
    *kind*, so the minimized workload reproduces the same class of bug.
    """
    from repro.oracle.fuzz import DEEP_EVERY, check_workload

    deep = deep_every if deep_every is not None else DEEP_EVERY

    def still_fails(cand: Workload) -> bool:
        got = check_workload(
            div.structure, cand, params=div.params, seed=div.seed or 0,
            deep_every=deep,
        )
        return got is not None and got.violation.kind == div.violation.kind

    small, stats = shrink_workload(div.workload, still_fails, budget=budget)
    final = check_workload(
        div.structure, small, params=div.params, seed=div.seed or 0,
        deep_every=deep,
    )
    if final is None:  # paranoia: shrinking must preserve failure
        return div
    final.shrink_stats = {
        **stats,
        "batches": f"{len(div.workload.batches)}→{len(small.batches)}",
        "ops": f"{div.workload.total_updates}→{small.total_updates}",
        "initial_edges":
            f"{len(div.workload.initial_edges)}→{len(small.initial_edges)}",
    }
    return final

"""Violation and divergence records for the differential oracle.

A :class:`Violation` is one failed check at one point of a workload run; a
:class:`Divergence` bundles the violation with the workload that produced
it (possibly already shrunk) so it can be replayed, minimized further, or
emitted as a pytest regression case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.workloads.streams import Workload

__all__ = ["Divergence", "Violation"]


@dataclass
class Violation:
    """One failed oracle check.

    ``kind`` is a stable machine-readable tag (shrinking matches on it so
    the minimized workload reproduces the *same* failure, not just any
    failure); ``detail`` is the human-readable explanation.
    """

    kind: str
    detail: str
    batch_index: int = -1  # -1: during construction / final checks

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = (
            "construction" if self.batch_index < 0
            else f"batch {self.batch_index}"
        )
        return f"[{self.kind} @ {where}] {self.detail}"


@dataclass
class Divergence:
    """A reproducible oracle failure: structure + workload + violation."""

    structure: str
    params: dict[str, Any]
    workload: Workload
    violation: Violation
    seed: int | None = None
    shrink_stats: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        wl = self.workload
        return (
            f"{self.structure}{self.params}: {self.violation} "
            f"(workload: n={wl.n}, {len(wl.initial_edges)} initial edges, "
            f"{len(wl.batches)} batches / {wl.total_updates} ops)"
        )

"""Differential fuzzing and invariant-checking oracle.

Cross-checks every dynamic structure in the package against (a) the
:meth:`Workload.replay` edge-set ground truth, (b) from-scratch static
baselines (Baswana–Sen, incremental greedy, union-find), and (c) the
paper's quantitative invariants (stretch, size, recourse, depth).  On
divergence the workload is shrunk to a minimal reproducer and emitted as
a pytest case.  See ``docs/fuzzing.md``.
"""

from repro.oracle.adapters import STRUCTURES, OracleAdapter, make_adapter
from repro.oracle.emit import emit_pytest_case, write_pytest_case
from repro.oracle.fuzz import FuzzConfig, FuzzReport, check_workload, run_fuzz
from repro.oracle.queries import (
    QueryFuzzConfig,
    QueryFuzzReport,
    check_query_batch,
    run_query_fuzz,
    singleton_answers,
)
from repro.oracle.service import (
    ServiceVerification,
    verify_replica,
    verify_service,
)
from repro.oracle.shrink import shrink_divergence, shrink_workload
from repro.oracle.violations import Divergence, Violation

__all__ = [
    "Divergence",
    "FuzzConfig",
    "FuzzReport",
    "OracleAdapter",
    "QueryFuzzConfig",
    "QueryFuzzReport",
    "STRUCTURES",
    "ServiceVerification",
    "Violation",
    "check_query_batch",
    "check_workload",
    "emit_pytest_case",
    "make_adapter",
    "run_fuzz",
    "run_query_fuzz",
    "singleton_answers",
    "shrink_divergence",
    "shrink_workload",
    "verify_replica",
    "verify_service",
    "write_pytest_case",
]

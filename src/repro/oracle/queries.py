"""Differential oracle for the batched query engine.

The batch query engine (:mod:`repro.queries.batch`) promises *exact*
equivalence with the query-at-a-time path — batching is an execution
strategy, never an approximation — plus work/depth charges that stay
inside the shared-traversal envelope.  This module checks both claims the
same way :mod:`repro.oracle.fuzz` checks the structures:

* :func:`singleton_answers` is the reference implementation — a literal
  transcription of the serving engine's per-query path
  (:meth:`repro.service.engine.SpannerService.query`).
* :func:`check_query_batch` runs one query workload through both paths
  and returns every violation: answer mismatches, order/duplication
  variance (a batch's answers must not depend on request order or
  multiplicity), and work/depth envelope breaches.
* :func:`run_query_fuzz` is the campaign driver behind
  ``repro fuzz --queries``: seeded random graphs x query mixes, plus
  periodic cross-checks of the Euler-tour-forest batches
  (:func:`~repro.queries.batch.batch_find_repr` /
  :func:`~repro.queries.batch.batch_connected_forest`), the batched
  stretch check, and the full serving engine's
  :meth:`~repro.service.engine.SpannerService.query_batch`.

Envelopes follow the convention of :mod:`repro.oracle.invariants`: a
generous constant over the analytical bound, so they only fire on real
asymptotic regressions (a query-count-proportional traversal sneaking
back in), never on constant-factor noise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.connectivity.euler_tour import EulerTourForest
from repro.graph.dynamic_graph import Edge
from repro.graph.traversal import bfs_distances, bfs_distances_bounded
from repro.oracle.violations import Violation
from repro.pram.cost import CostModel, log2ceil
from repro.queries.batch import (
    answer_queries,
    batch_connected_forest,
    batch_find_repr,
    batch_stretch_check,
    coalesce_queries,
    multi_source_bfs,
)

__all__ = [
    "ENVELOPE_C",
    "QueryFuzzConfig",
    "QueryFuzzReport",
    "check_empty_batch",
    "check_forest_batch",
    "check_query_batch",
    "check_stretch_batch",
    "run_query_fuzz",
    "singleton_answers",
]

#: Generous multiplicative headroom on the analytical work/depth bounds
#: (same convention as the structure envelopes in
#: :mod:`repro.oracle.invariants`).
ENVELOPE_C = 8


def _adjacency(edge_set: set[Edge]) -> dict[int, set[int]]:
    adj: dict[int, set[int]] = {}
    for a, b in edge_set:
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set()).add(a)
    return adj


def singleton_answers(
    items: Sequence[tuple[str, Any]],
    edge_set: set[Edge],
    adjacency: dict[int, set[int]] | None = None,
) -> list[Any]:
    """The query-at-a-time reference path, one traversal per query.

    A literal transcription of the serving engine's
    :meth:`~repro.service.engine.SpannerService.query` dispatch, so
    "batch == singleton" here is exactly the equivalence the engine
    promises its clients.
    """
    if adjacency is None:
        adjacency = _adjacency(edge_set)
    out: list[Any] = []
    for kind, payload in items:
        if kind == "size":
            out.append(len(edge_set))
        elif kind == "edges":
            out.append(set(edge_set))
        elif kind == "contains":
            u, v = payload
            e = (u, v) if u < v else (v, u)
            out.append(e in edge_set)
        elif kind in ("distance", "connected"):
            u, v = payload
            if u == v:
                d = 0
            elif u not in adjacency:
                d = None
            else:
                d = bfs_distances(adjacency, u, target=v).get(v)
            if kind == "connected":
                out.append(d is not None)
            else:
                out.append(float("inf") if d is None else float(d))
        else:
            raise ValueError(f"unknown query kind {kind!r}")
    return out


def check_query_batch(
    n: int,
    edge_set: set[Edge],
    items: Sequence[tuple[str, Any]],
    rng: np.random.Generator | None = None,
) -> list[Violation]:
    """Cross-check one query batch against the singleton path.

    Checks, in order: exact per-item equality with
    :func:`singleton_answers`; order invariance (the reversed — and, with
    ``rng``, a shuffled — batch answers each item identically);
    duplication invariance (doubling the batch changes nothing); and the
    work/depth envelopes of the shared traversals.  Returns every
    violation found (empty list = all checks pass).
    """
    items = list(items)
    adjacency = _adjacency(edge_set)
    viols: list[Violation] = []
    cost = CostModel()
    batch, stats = answer_queries(
        items, edge_set=edge_set, adjacency=adjacency, n=n, cost=cost,
    )
    single = singleton_answers(items, edge_set, adjacency)
    for i, (got, ref) in enumerate(zip(batch, single)):
        if got != ref:
            viols.append(Violation(
                "batch-mismatch",
                f"item {i} {items[i]!r}: batch answered {got!r}, "
                f"singleton path answers {ref!r}",
            ))
            break  # one mismatch per batch is enough signal
    orders = [list(reversed(range(len(items))))]
    if rng is not None and len(items) > 1:
        orders.append(list(rng.permutation(len(items))))
    for perm in orders:
        reordered, _ = answer_queries(
            [items[i] for i in perm],
            edge_set=edge_set, adjacency=adjacency, n=n,
        )
        for j, i in enumerate(perm):
            if reordered[j] != batch[i]:
                viols.append(Violation(
                    "order-variance",
                    f"item {items[i]!r} answered {batch[i]!r} in request "
                    f"order but {reordered[j]!r} after reordering",
                ))
                break
    doubled, _ = answer_queries(
        items + items, edge_set=edge_set, adjacency=adjacency, n=n,
    )
    if doubled[:len(items)] != batch or doubled[len(items):] != batch:
        viols.append(Violation(
            "duplication-variance",
            "duplicating every query changed at least one answer",
        ))
    # envelopes: shared traversals mean total work is bounded by
    # (#BFS waves) x graph size plus per-query O(log n) bookkeeping —
    # never by (#queries) x graph size — and depth by levels x log n
    k = len(items)
    m = len(edge_set)
    logn = log2ceil(max(n, 2))
    graph = n + 2 * m + 1
    work_bound = ENVELOPE_C * (
        (stats.sources + 1) * graph + k * (logn + 1) + 1
    )
    if stats.work > work_bound:
        viols.append(Violation(
            "query-work-envelope",
            f"batch charged work {stats.work} > bound {work_bound} "
            f"(k={k}, n={n}, m={m}, sources={stats.sources})",
        ))
    depth_bound = ENVELOPE_C * (min(n, 2 * m) + 2) * (logn + 1)
    if stats.depth > depth_bound:
        viols.append(Violation(
            "query-depth-envelope",
            f"batch charged depth {stats.depth} > bound {depth_bound} "
            f"(k={k}, n={n}, m={m})",
        ))
    if stats.unique > stats.queries:
        viols.append(Violation(
            "dedup-accounting",
            f"stats claim {stats.unique} unique of {stats.queries} queries",
        ))
    viols.extend(check_empty_batch(n, edge_set, adjacency))
    return viols


def check_empty_batch(
    n: int, edge_set: set[Edge], adjacency=None
) -> list[Violation]:
    """The degenerate-batch contract: empty in, empty out, zero charges.

    ``multi_source_bfs`` with no sources, ``answer_queries`` with no
    items, and ``bfs_distances_bounded`` with a non-positive limit must
    all return their empty/identity result without charging any
    work or depth (an empty parallel batch performs no rounds).
    """
    if adjacency is None:
        adjacency = _adjacency(edge_set)
    viols: list[Violation] = []
    cost = CostModel()
    with cost.frame() as fr:
        empty = multi_source_bfs(adjacency, [], n=n, cost=cost)
    if empty != {}:
        viols.append(Violation(
            "empty-sources-result",
            f"multi_source_bfs with no sources returned {empty!r}",
        ))
    if fr.work or fr.depth:
        viols.append(Violation(
            "empty-sources-charge",
            f"multi_source_bfs with no sources charged "
            f"work={fr.work} depth={fr.depth} (must be 0/0)",
        ))
    cost = CostModel()
    answers, stats = answer_queries(
        [], edge_set=edge_set, adjacency=adjacency, n=n, cost=cost,
    )
    if answers != [] or stats.work or stats.depth:
        viols.append(Violation(
            "empty-batch-charge",
            f"answer_queries on an empty batch returned {answers!r} "
            f"with work={stats.work} depth={stats.depth} (must be "
            "[] with 0/0)",
        ))
    src = 0 if n else -1
    if n and bfs_distances_bounded(adjacency, src, 0) != {src: 0}:
        viols.append(Violation(
            "bounded-zero-limit",
            "bfs_distances_bounded(limit=0) must return {source: 0}",
        ))
    return viols


def check_forest_batch(
    forest: EulerTourForest,
    vertices: Sequence[int],
    pairs: Sequence[tuple[int, int]],
) -> list[Violation]:
    """Cross-check the Euler-tour-forest batches against singletons.

    ``batch_find_repr`` must induce exactly the forest's connectivity
    relation, and ``batch_connected_forest`` must equal per-pair
    :meth:`~repro.connectivity.euler_tour.EulerTourForest.connected` —
    including the ``connected(v, v)`` = True contract on never-linked
    singleton vertices.
    """
    viols: list[Violation] = []
    cost = CostModel()
    with cost.frame() as fr:
        reprs = batch_find_repr(forest, vertices, cost=cost)
    for v, r in zip(vertices, reprs):
        if forest.find_repr(v) != r:
            viols.append(Violation(
                "forest-repr-mismatch",
                f"batch_find_repr({v}) = {r}, singleton says "
                f"{forest.find_repr(v)}",
            ))
            break
    conns = batch_connected_forest(forest, pairs)
    for (u, v), c in zip(pairs, conns):
        if forest.connected(u, v) != c:
            viols.append(Violation(
                "forest-connected-mismatch",
                f"batch_connected_forest({u},{v}) = {c}, singleton says "
                f"{forest.connected(u, v)}",
            ))
            break
    # memoized root paths: total parent steps are bounded by the forest
    # size (each treap node's path suffix is walked once per batch), plus
    # O(1) per query — never (#queries) x tree height
    arcs = 3 * forest.n  # loop arcs + two arcs per forest edge, bounded
    bound = ENVELOPE_C * (arcs + len(vertices) + 1)
    if fr.work > bound:
        viols.append(Violation(
            "forest-work-envelope",
            f"batch_find_repr charged work {fr.work} > bound {bound} "
            f"(n={forest.n}, k={len(vertices)})",
        ))
    return viols


def check_stretch_batch(
    n: int,
    graph_edges: set[Edge],
    spanner_edges: set[Edge],
    stretch: float,
) -> list[Violation]:
    """Cross-check the batched stretch check against per-edge bounded BFS."""
    spanner_adj = _adjacency(spanner_edges)
    got = set(batch_stretch_check(
        graph_edges, spanner_adj, stretch, n=n,
    ))
    expect = set()
    for u, v in graph_edges:
        a, b = (u, v) if u <= v else (v, u)
        if a == b:
            continue
        d = bfs_distances_bounded(
            spanner_adj, a, int(stretch)
        ).get(b) if a in spanner_adj else None
        if d is None:
            expect.add((a, b))
    if got != expect:
        return [Violation(
            "stretch-mismatch",
            f"batched stretch check flagged {sorted(got - expect)[:3]} "
            f"not flagged by per-edge BFS, missed "
            f"{sorted(expect - got)[:3]}",
        )]
    return []


# -- campaign ----------------------------------------------------------------


@dataclass
class QueryFuzzConfig:
    """Knobs for one batch-query fuzz campaign (defaults CI-safe)."""

    workloads: int = 500
    max_n: int = 48
    max_queries: int = 64
    time_budget: float | None = None   # seconds, soft cap
    service_every: int = 25            # full-engine cross-check cadence
    forest_every: int = 5              # ETF / stretch cross-check cadence


@dataclass
class QueryFuzzReport:
    config: QueryFuzzConfig
    workloads: int = 0
    queries: int = 0
    deduped: int = 0
    violations: list[tuple[int, Violation]] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def rows(self) -> list[dict[str, Any]]:
        """Table rows for :func:`repro.harness.format_table`."""
        return [{
            "workloads": self.workloads,
            "queries": self.queries,
            "deduped": self.deduped,
            "violations": len(self.violations),
        }]


def _random_graph(
    rng: np.random.Generator, max_n: int
) -> tuple[int, set[Edge]]:
    n = int(rng.integers(2, max_n + 1))
    max_m = n * (n - 1) // 2
    m = int(rng.integers(0, min(3 * n, max_m) + 1))
    edges: set[Edge] = set()
    while len(edges) < m:
        u, v = rng.choice(n, size=2, replace=False)
        u, v = int(u), int(v)
        edges.add((u, v) if u < v else (v, u))
    return n, edges


def _random_queries(
    rng: np.random.Generator, n: int, max_queries: int
) -> list[tuple[str, Any]]:
    """A query mix with deliberate duplicates, reversals, and diagonals."""
    k = int(rng.integers(1, max_queries + 1))
    kinds = ("distance", "connected", "contains", "size", "edges")
    # zipf-ish hot set: most pair queries land on few vertices, so
    # dedup and shared waves actually engage
    hot = max(2, n // 4)
    items: list[tuple[str, Any]] = []
    for _ in range(k):
        kind = kinds[int(rng.integers(0, len(kinds)))]
        if kind in ("size", "edges"):
            items.append((kind, None))
            continue
        lo = hot if rng.random() < 0.7 else n
        u = int(rng.integers(0, lo))
        v = u if rng.random() < 0.1 else int(rng.integers(0, lo))
        items.append((kind, (u, v)))
    # echo some items verbatim and some reversed
    for i in list(rng.integers(0, len(items), size=len(items) // 3)):
        kind, payload = items[int(i)]
        if payload is not None and rng.random() < 0.5:
            payload = (payload[1], payload[0])
        items.append((kind, payload))
    return items


def _check_service_batch(
    n: int, edges: set[Edge], items: list[tuple[str, Any]]
) -> list[Violation]:
    """End-to-end: the serving engine's query_batch vs its own query()."""
    from repro.service.engine import LocalExecutor, SpannerService

    spec = {"kind": "spanner", "n": n, "edges": sorted(edges),
            "k": 2, "seed": 7}
    svc = SpannerService(LocalExecutor(spec))
    try:
        batch = svc.query_batch(items)
        for i, ((kind, payload), res) in enumerate(zip(items, batch)):
            ref = svc.query(kind, payload)
            if res.value != ref:
                return [Violation(
                    "service-batch-mismatch",
                    f"item {i} ({kind!r}, {payload!r}): query_batch "
                    f"answered {res.value!r}, query() answers {ref!r}",
                )]
    finally:
        svc.close()
    return []


def run_query_fuzz(
    config: QueryFuzzConfig,
    log: Callable[[str], None] | None = None,
) -> QueryFuzzReport:
    """Run the batch-query campaign; deterministic for a fixed config."""
    report = QueryFuzzReport(config=config)
    t0 = time.perf_counter()
    for i in range(config.workloads):
        if (config.time_budget is not None
                and time.perf_counter() - t0 > config.time_budget):
            if log:
                log(f"time budget {config.time_budget:.0f}s exhausted "
                    f"after {i} workload(s) — campaign truncated")
            break
        rng = np.random.default_rng((0x9E3779B9, i))
        n, edges = _random_graph(rng, config.max_n)
        items = _random_queries(rng, n, config.max_queries)
        viols = check_query_batch(n, edges, items, rng=rng)
        if i % max(config.forest_every, 1) == 0:
            forest = EulerTourForest(n, seed=i)
            linked: list[tuple[int, int]] = []
            for u, v in sorted(edges):
                if not forest.connected(u, v):
                    forest.link(u, v)
                    linked.append((u, v))
            verts = [int(x) for x in rng.integers(0, n, size=min(n, 16))]
            pairs = [(int(a), int(b)) for a, b in
                     rng.integers(0, n, size=(min(n, 12), 2))]
            pairs.append((verts[0], verts[0]))  # diagonal contract
            viols += check_forest_batch(forest, verts, pairs)
            viols += check_stretch_batch(
                n, edges, set(linked), stretch=3.0,
            )
        if (config.service_every
                and i % max(config.service_every, 1) == 0):
            viols += _check_service_batch(n, edges, items)
        report.workloads += 1
        report.queries += len(items)
        keys, _ = coalesce_queries(items)
        report.deduped += len(items) - len(keys)
        for v in viols:
            if log:
                log(f"violation (workload {i}): {v}")
            report.violations.append((i, v))
    report.wall_seconds = time.perf_counter() - t0
    return report

"""Quantitative invariant checks shared by the fuzzing oracle.

Each check returns a :class:`~repro.oracle.violations.Violation` (or a list
of them) instead of raising, so the fuzz loop can collect, shrink, and
report.  The *envelopes* turn the paper's asymptotic guarantees into
checkable inequalities: every bound is the paper's expression evaluated
with a deliberately generous constant (documented inline, calibrated
against the measured constants in EXPERIMENTS.md) so that a violation
signals a real bug, not an unlucky seed.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.graph.dynamic_graph import Edge, norm_edge
from repro.oracle.violations import Violation
from repro.verify.stretch import is_spanner

__all__ = [
    "check_forest",
    "check_output_subset",
    "check_size",
    "check_same_components",
    "check_spanner_stretch",
    "components_of",
    "depth_envelope",
    "size_envelope_spanner",
    "size_envelope_ultrasparse",
    "recourse_envelope",
]


# -- connectivity ground truth (union-find) ----------------------------------


class _UnionFind:
    __slots__ = ("parent",)

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        p = self.parent
        root = x
        while p[root] != root:
            root = p[root]
        while p[x] != root:
            p[x], x = root, p[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[ra] = rb
        return True


def components_of(n: int, edges: Iterable[Edge]) -> list[int]:
    """Canonical component label per vertex (union-find baseline)."""
    uf = _UnionFind(n)
    for u, v in edges:
        uf.union(u, v)
    return [uf.find(v) for v in range(n)]


# -- structural checks -------------------------------------------------------


def check_output_subset(
    graph: set[Edge], out: set[Edge], what: str = "output"
) -> Violation | None:
    """The maintained output must be a subgraph of the current graph."""
    stray = out - graph
    if stray:
        return Violation(
            "output-not-subgraph",
            f"{what} contains {len(stray)} edge(s) absent from the graph, "
            f"e.g. {sorted(stray)[:3]}",
        )
    return None


def check_same_components(
    n: int, graph: set[Edge], out: set[Edge], what: str = "output"
) -> Violation | None:
    """The output must preserve the graph's connectivity structure."""
    cg = components_of(n, graph)
    ch = components_of(n, out)
    # identical partitions <=> the label maps induce the same blocks
    remap: dict[int, int] = {}
    for v in range(n):
        want = remap.setdefault(cg[v], ch[v])
        if ch[v] != want:
            return Violation(
                "connectivity",
                f"{what} splits the component of vertex {v} "
                f"(graph label {cg[v]}, output label {ch[v]})",
            )
    # the converse direction: output ⊆ graph means output can never merge
    # components the graph keeps apart, but check it anyway for adapters
    # whose output is not a subgraph (weighted sparsifiers)
    remap.clear()
    for v in range(n):
        want = remap.setdefault(ch[v], cg[v])
        if cg[v] != want:
            return Violation(
                "connectivity",
                f"{what} merges graph components at vertex {v}",
            )
    return None


def check_forest(
    n: int, graph: set[Edge], forest: set[Edge]
) -> Violation | None:
    """``forest`` must be a spanning forest of ``graph``: a subgraph,
    acyclic, and with exactly ``n - #components(graph)`` edges."""
    v = check_output_subset(graph, forest, what="forest")
    if v is not None:
        return v
    uf = _UnionFind(n)
    for a, b in forest:
        if not uf.union(a, b):
            return Violation(
                "forest-cycle", f"forest edge {(a, b)} closes a cycle"
            )
    comps = len({uf.find(x) for x in range(n)})
    want_comps = len(set(components_of(n, graph)))
    if comps != want_comps:
        return Violation(
            "forest-not-spanning",
            f"forest has {comps} components, graph has {want_comps}",
        )
    return None


def check_spanner_stretch(
    n: int, graph: set[Edge], out: set[Edge], stretch: float,
    what: str = "spanner",
) -> Violation | None:
    """``out`` must be a subgraph of ``graph`` with the claimed stretch."""
    g = {norm_edge(u, v) for u, v in graph}
    h = {norm_edge(u, v) for u, v in out}
    # distances in a connected n-vertex graph never exceed n - 1, so a
    # super-linear claimed stretch degenerates to connectivity preservation
    cap = min(stretch, float(n))
    if not is_spanner(n, g, h, cap):
        if not h <= g:
            return check_output_subset(g, h, what=what)
        return Violation(
            "stretch",
            f"{what} is not a {cap:g}-spanner of the current graph "
            f"(|G|={len(g)}, |H|={len(h)})",
        )
    return None


# -- quantitative envelopes --------------------------------------------------
#
# Constants: EXPERIMENTS.md measures size/bound <= 0.11 and recourse/bound
# <= 0.02 for Theorem 1.1 (E1), and depth within ~2.2x of the paper bound
# (E2).  The envelopes below allow 8-64x headroom on top of the paper's
# expression, so they only trip on genuine blowups (lost edges, runaway
# rebuild loops), never on seed variance.


def size_envelope_spanner(n: int, k: int) -> float:
    """Theorem 1.1 / Lemma 3.3: ``O(n^{1+1/k} log n)`` spanner edges."""
    n = max(n, 2)
    return 8.0 * n ** (1.0 + 1.0 / k) * math.log2(n + 2) + 64.0


def size_envelope_ultrasparse(n: int, x: float) -> float:
    """Theorem 1.4: ``n + O(n/x)`` spanner edges."""
    n = max(n, 2)
    return n + 16.0 * n / max(x, 1.0) + 64.0


def recourse_envelope(
    n: int, k: int, total_updates: int, initial_output: int
) -> float:
    """Amortized recourse ``O(k log^2 n)`` per update (Theorem 1.1), plus
    the initial output (everything may churn once at the first rebuild)."""
    lg = math.log2(max(n, 4))
    return initial_output + 16.0 * k * lg * lg * max(total_updates, 1) + 64.0


def depth_envelope(n: int, k: int = 2) -> float:
    """Per-batch depth ``poly(log n)`` independent of batch size.  The
    deepest path in this codebase is the dynamizer rebuild feeding a
    decremental-spanner initialization: ``O(k log^3 n)`` with small
    constants; allow 64x."""
    lg = math.log2(max(n, 4))
    return 64.0 * max(k, 1) * lg ** 3 + 256.0


def check_size(
    size: int, bound: float, what: str = "output"
) -> Violation | None:
    """Generic size-envelope check."""
    if size > bound:
        return Violation(
            "size-envelope", f"{what} has {size} edges > envelope {bound:.0f}"
        )
    return None

"""Oracle verification for the serving engine (:mod:`repro.service`).

Replaces the serve demo's bespoke replay compare with the shared oracle:
every per-shard coalesced batch the service applied is replayed
synchronously through a freshly built backend (same spec, same seed) and
cross-checked against

1. the service's snapshot (the delta-maintained output view),
2. a fresh scatter/gather from the live workers,
3. the :meth:`Workload.replay` edge-set ground truth vs the coalescing
   queue's membership view,
4. (``deep=True``) the structure-level invariants: output ⊆ graph per
   shard and the (2k−1) stretch bound on each shard's replayed spanner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.oracle.invariants import check_output_subset, check_spanner_stretch
from repro.oracle.violations import Violation
from repro.pram.cost import CostModel
from repro.workloads.streams import Workload

__all__ = ["ServiceVerification", "verify_replica", "verify_service"]


@dataclass
class ServiceVerification:
    """Outcome of one service cross-check."""

    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.ok:
            return "service verification: OK"
        return "service verification FAILED:\n" + "\n".join(
            f"  - {v}" for v in self.violations
        )


def verify_replica(primary, replica) -> ServiceVerification:
    """Cross-check a log-shipping replica against its primary.

    Both arguments are :class:`~repro.service.engine.SpannerService`
    instances.  Because the structures are seeded Las Vegas, a replica
    that applied the primary's exact shipped batch sequence from the same
    base spec must match it *bit for bit* — this asserts that on four
    views: commit sequence number, delta-maintained snapshot, a fresh
    gather from the live executors (catches snapshot drift on either
    side), and the graph membership view.
    """
    result = ServiceVerification()
    if primary.committed_seq != replica.committed_seq:
        result.violations.append(Violation(
            "replica-seq-lag",
            f"replica committed seq {replica.committed_seq} != primary "
            f"{primary.committed_seq} (catch-up incomplete)",
        ))
    p_snap, r_snap = primary.snapshot_edges(), replica.snapshot_edges()
    if p_snap != r_snap:
        result.violations.append(Violation(
            "replica-snapshot-drift",
            f"replica snapshot != primary snapshot "
            f"({len(p_snap ^ r_snap)} edge(s) differ)",
        ))
    p_live = primary.executor.gather_edges()
    r_live = replica.executor.gather_edges()
    if p_live != r_live:
        result.violations.append(Violation(
            "replica-output-drift",
            f"replica live output != primary live output "
            f"({len(p_live ^ r_live)} edge(s) differ)",
        ))
    p_graph, r_graph = primary.graph_edges(), replica.graph_edges()
    if p_graph != r_graph:
        result.violations.append(Violation(
            "replica-graph-drift",
            f"replica graph view != primary graph view "
            f"({len(p_graph ^ r_graph)} edge(s) differ)",
        ))
    return result


def verify_service(service, executor, deep: bool = False,
                   ) -> ServiceVerification:
    """Cross-check a :class:`~repro.service.engine.SpannerService` against
    a synchronous replay of its applied batches (see module docstring).

    ``executor`` must expose ``shard_specs`` / ``applied_batches`` /
    ``gather_edges`` (both :class:`LocalExecutor` via a single-shard view
    and :class:`ShardedExecutor` do).
    """
    from repro.service.engine import build_backend

    result = ServiceVerification()
    shard_specs = getattr(executor, "shard_specs", None)
    applied = getattr(executor, "applied_batches", None)
    if shard_specs is None:  # LocalExecutor: one implicit shard
        shard_specs = [executor.spec]
        applied = [applied or []]

    replay_output: set = set()
    replay_graph: set = set()
    for shard_idx, (spec, batches) in enumerate(zip(shard_specs, applied)):
        rebuilt = build_backend(spec, CostModel())
        mirror = set(rebuilt.output_edges())
        for batch in batches:
            ins, dels = rebuilt.update(
                insertions=batch.insertions, deletions=batch.deletions
            )
            mirror -= set(dels)
            mirror |= set(ins)
        out = rebuilt.output_edges()
        if mirror != out:
            result.violations.append(Violation(
                "delta-drift",
                f"shard {shard_idx}: replayed deltas drift from the "
                f"rebuilt output ({len(mirror ^ out)} edge(s) differ)",
            ))
        replay_output |= out
        wl = Workload(spec["n"], [tuple(e) for e in spec["edges"]],
                      list(batches))
        graph = set(wl.initial_edges)
        try:
            for _, graph in wl.replay():
                pass
        except ValueError as exc:
            result.violations.append(Violation(
                "illegal-batch-log",
                f"shard {shard_idx}: applied batches are not sequentially "
                f"legal: {exc}",
            ))
            continue
        replay_graph |= graph
        if deep:
            v = check_output_subset(graph, out,
                                    what=f"shard {shard_idx} output")
            if v is not None:
                result.violations.append(v)
            if spec.get("kind", "spanner") == "spanner":
                k = int(spec.get("k", 2))
                v = check_spanner_stretch(
                    spec["n"], graph, out, 2 * k - 1,
                    what=f"shard {shard_idx} spanner",
                )
                if v is not None:
                    result.violations.append(v)

    snapshot = service.snapshot_edges()
    if replay_output != snapshot:
        result.violations.append(Violation(
            "snapshot-drift",
            f"synchronous replay output != service snapshot "
            f"({len(replay_output ^ snapshot)} edge(s) differ)",
        ))
    live = executor.gather_edges()
    if replay_output != live:
        result.violations.append(Violation(
            "live-drift",
            f"synchronous replay output != live worker gather "
            f"({len(replay_output ^ live)} edge(s) differ)",
        ))
    # A quarantined poison sub-batch (see ShardedExecutor.apply) was
    # admitted by the queue but deliberately never applied to its shard,
    # so the queue's membership view is *expected* to drift from the
    # per-shard replay; the drift is recorded in executor.quarantined and
    # surfaced through metrics, not reported as an oracle violation.
    if not getattr(executor, "quarantined", None):
        queue_view = service.graph_edges()
        if replay_graph != queue_view:
            result.violations.append(Violation(
                "queue-drift",
                f"replayed graph edge set != coalescing queue membership "
                f"view ({len(replay_graph ^ queue_view)} edge(s) differ)",
            ))
    return result

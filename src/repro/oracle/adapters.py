"""Uniform oracle adapters over every dynamic structure in the package.

Each adapter wraps one structure behind the same four-method surface the
differential fuzzer drives:

* ``apply(batch)`` — one update batch, returning the net output delta,
* ``output_edges()`` — the maintained output (spanner / sparsifier /
  forest),
* ``graph_edges()`` — the structure's *own* view of the current graph
  (``None`` when the structure does not track one; the fuzzer then only
  checks the output against the replay ground truth),
* ``violations(graph, batch_index, deep)`` — structure-specific checks:
  internal invariants every batch, plus the expensive differential ones
  (stretch via :mod:`repro.verify`, static Baswana–Sen / greedy baseline,
  union-find connectivity) when ``deep`` is set.

Adapters also run under a :class:`~repro.pram.cost.CostModel` so the fuzz
loop can hold per-batch depth against the paper's poly(log n) envelope.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable

import numpy as np

from repro.graph.dynamic_graph import Edge, norm_edge
from repro.oracle.invariants import (
    check_forest,
    check_output_subset,
    check_same_components,
    check_size,
    check_spanner_stretch,
    components_of,
    depth_envelope,
    recourse_envelope,
    size_envelope_spanner,
    size_envelope_ultrasparse,
)
from repro.oracle.violations import Violation
from repro.pram.cost import CostModel
from repro.workloads.streams import UpdateBatch

__all__ = ["OracleAdapter", "STRUCTURES", "make_adapter"]


class OracleAdapter:
    """Base adapter; subclasses wrap one concrete structure."""

    name = "abstract"
    deletions_only = False

    def __init__(self, n: int, edges: list[Edge], seed: int,
                 params: dict[str, Any]) -> None:
        self.n = n
        self.seed = seed
        self.params = dict(params)
        self.cost = CostModel()
        self.last_depth = 0
        self.total_recourse = 0
        self.total_updates = 0
        self.initial_output = 0
        self._build(n, edges, seed)
        self.initial_output = len(self.output_edges())

    # -- to implement --------------------------------------------------------

    def _build(self, n: int, edges: list[Edge], seed: int) -> None:
        raise NotImplementedError

    def _apply(self, batch: UpdateBatch) -> tuple[set[Edge], set[Edge]]:
        raise NotImplementedError

    def output_edges(self) -> set[Edge]:
        """The maintained output (spanner / sparsifier / forest) edges."""
        raise NotImplementedError

    def graph_edges(self) -> set[Edge] | None:
        """The structure's own graph view; ``None`` if it tracks none."""
        return None

    def check_internal(self) -> None:
        """Run the structure's own ``check_invariants`` (may raise)."""

    def _structure_violations(
        self, graph: set[Edge], deep: bool
    ) -> list[Violation]:
        return []

    # -- driver surface ------------------------------------------------------

    def apply(self, batch: UpdateBatch) -> tuple[set[Edge], set[Edge]]:
        """Apply one batch under cost accounting; tracks recourse/depth."""
        with self.cost.frame() as fr:
            ins, dels = self._apply(batch)
        self.last_depth = fr.depth
        self.total_recourse += len(ins) + len(dels)
        self.total_updates += batch.size
        return set(ins), set(dels)

    def violations(
        self, graph: set[Edge], batch_index: int, deep: bool
    ) -> list[Violation]:
        """All structure-specific violations against ground truth ``graph``."""
        out: list[Violation] = []
        try:
            self.check_internal()
        except AssertionError as exc:
            out.append(Violation(
                "internal-invariant", f"check_invariants failed: {exc!r}"
            ))
        v = self._depth_violation()
        if v is not None:
            out.append(v)
        out.extend(self._structure_violations(graph, deep))
        for viol in out:
            viol.batch_index = batch_index
        return out

    def _depth_bound(self) -> float:
        return depth_envelope(self.n, int(self.params.get("k", 2)))

    def _depth_violation(self) -> Violation | None:
        bound = self._depth_bound()
        if self.last_depth > bound:
            return Violation(
                "depth-envelope",
                f"batch depth {self.last_depth} > poly(log n) envelope "
                f"{bound:.0f}",
            )
        return None


# -- helpers -----------------------------------------------------------------


def _graph_view_violation(
    tracked: set[Edge] | None, graph: set[Edge]
) -> Violation | None:
    if tracked is None or tracked == graph:
        return None
    missing = graph - tracked
    extra = tracked - graph
    return Violation(
        "graph-view-drift",
        f"structure's edge view drifted from replay: missing "
        f"{sorted(missing)[:3]} extra {sorted(extra)[:3]}",
    )


def _spanner_baseline_violations(
    n: int, graph: set[Edge], out_size: int, k: int, seed: int
) -> list[Violation]:
    """Differential comparison against trusted static constructions.

    Baswana–Sen and incremental greedy rebuilt from scratch on the current
    edge set give an independent size reference: the dynamic structure may
    pay its O(log n) dynamization overhead but must stay within a generous
    multiple of the static result.
    """
    from repro.spanner.incremental_greedy import IncrementalGreedySpanner
    from repro.spanner.static_baswana_sen import baswana_sen_spanner

    viols: list[Violation] = []
    static = baswana_sen_spanner(n, sorted(graph), k, seed=seed)
    v = check_spanner_stretch(
        n, graph, static, 2 * k - 1, what="static Baswana-Sen baseline"
    )
    if v is not None:
        # the trusted baseline itself failing means the verifier and the
        # baseline disagree — either way the toolchain is broken
        v.kind = "baseline-broken"
        viols.append(v)
    greedy = IncrementalGreedySpanner(n, sorted(graph), k=k)
    ref = max(len(static), greedy.spanner_size(), n)
    lg = math.log2(max(n, 4))
    if out_size > 16.0 * lg * ref + 64.0:
        viols.append(Violation(
            "size-vs-static",
            f"dynamic spanner has {out_size} edges vs static baselines "
            f"(BS={len(static)}, greedy={greedy.spanner_size()}) — "
            f"exceeds the O(log n) dynamization envelope",
        ))
    return viols


# -- concrete adapters -------------------------------------------------------


class FullyDynamicSpannerAdapter(OracleAdapter):
    """Theorem 1.1 fully-dynamic (2k−1)-spanner."""

    name = "spanner"

    def _build(self, n, edges, seed):
        from repro.spanner.fully_dynamic import FullyDynamicSpanner

        self.k = int(self.params.get("k", 2))
        self.s = FullyDynamicSpanner(
            n, edges, k=self.k, seed=seed, cost=self.cost,
            base_capacity=self.params.get("base_capacity"),
            restart_every=self.params.get("restart_every"),
        )

    def _apply(self, batch):
        return self.s.update(batch.insertions, batch.deletions)

    def output_edges(self):
        return self.s.spanner_edges()

    def graph_edges(self):
        return self.s.edges()

    def check_internal(self):
        self.s.check_invariants()
        assert self.s.spanner_size() == len(self.s.spanner_edges()), \
            "spanner_size() disagrees with spanner_edges()"

    def _structure_violations(self, graph, deep):
        out = self.output_edges()
        viols: list[Violation] = []
        for v in (
            _graph_view_violation(self.graph_edges(), graph),
            check_output_subset(graph, out),
            check_size(len(out), size_envelope_spanner(self.n, self.k)),
            Violation(
                "recourse-envelope",
                f"cumulative recourse {self.total_recourse} > envelope",
            ) if self.total_recourse > recourse_envelope(
                self.n, self.k, self.total_updates, self.initial_output
            ) else None,
        ):
            if v is not None:
                viols.append(v)
        if deep:
            v = check_spanner_stretch(self.n, graph, out, 2 * self.k - 1)
            if v is not None:
                viols.append(v)
            viols.extend(_spanner_baseline_violations(
                self.n, graph, len(out), self.k, self.seed
            ))
        return viols


class DecrementalSpannerAdapter(OracleAdapter):
    """Lemma 3.3 decremental (2k−1)-spanner (deletion streams only)."""

    name = "decremental"
    deletions_only = True

    def _build(self, n, edges, seed):
        from repro.spanner.decremental import DecrementalSpanner

        self.k = int(self.params.get("k", 2))
        self._graph = set(edges)
        self.s = DecrementalSpanner(n, edges, self.k, seed=seed,
                                    cost=self.cost)

    def _apply(self, batch):
        assert not batch.insertions, "decremental structure fed insertions"
        self._graph -= set(batch.deletions)
        return self.s.batch_delete(batch.deletions)

    def output_edges(self):
        return self.s.spanner_edges()

    def graph_edges(self):
        return set(self._graph)

    def check_internal(self):
        self.s.check_invariants()

    def _structure_violations(self, graph, deep):
        out = self.output_edges()
        viols: list[Violation] = []
        for v in (
            check_output_subset(graph, out),
            check_size(len(out), size_envelope_spanner(self.n, self.k)),
        ):
            if v is not None:
                viols.append(v)
        if deep:
            v = check_spanner_stretch(self.n, graph, out, 2 * self.k - 1)
            if v is not None:
                viols.append(v)
            viols.extend(_spanner_baseline_violations(
                self.n, graph, len(out), self.k, self.seed
            ))
        return viols


class _IdentityDecremental:
    """Trivial decremental structure whose output *is* its edge set.

    Plugged into the Bentley–Saxe dynamizer it turns the dynamizer into a
    (slow) dynamic *set*: the composed output must equal the replay edge
    set exactly, isolating partition/INDEX bookkeeping bugs from spanner
    logic.
    """

    def __init__(self, edges: Iterable[Edge]) -> None:
        self._edges = set(edges)

    def output_edges(self) -> set[Edge]:
        return set(self._edges)

    def batch_delete(self, edges):
        dels = set(edges)
        assert dels <= self._edges
        self._edges -= dels
        return set(), dels


class DynamizerAdapter(OracleAdapter):
    """§3.4 Bentley–Saxe dynamizer over the identity structure."""

    name = "dynamizer"

    def _build(self, n, edges, seed):
        from repro.spanner.dynamizer import BentleySaxeDynamizer

        self.s = BentleySaxeDynamizer(
            edges, _IdentityDecremental,
            base_capacity=int(self.params.get("base_capacity", 4)),
            cost=self.cost,
            restart_every=self.params.get("restart_every"),
        )

    def _apply(self, batch):
        return self.s.update(batch.insertions, batch.deletions)

    def output_edges(self):
        return self.s.output_edges()

    def graph_edges(self):
        return self.s.edges()

    def check_internal(self):
        self.s.check_invariants()

    def _structure_violations(self, graph, deep):
        viols: list[Violation] = []
        v = _graph_view_violation(self.graph_edges(), graph)
        if v is not None:
            viols.append(v)
        out = self.output_edges()
        if out != graph:
            viols.append(Violation(
                "identity-output",
                f"dynamizer over the identity structure must output the "
                f"graph verbatim; missing {sorted(graph - out)[:3]}, "
                f"extra {sorted(out - graph)[:3]}",
            ))
        if self.s.m != len(graph):
            viols.append(Violation(
                "m-drift", f"m={self.s.m} but replay has {len(graph)} edges"
            ))
        return viols


class SparsifierAdapter(OracleAdapter):
    """Theorem 1.6 fully-dynamic spectral sparsifier."""

    name = "sparsifier"

    def _build(self, n, edges, seed):
        from repro.sparsifier.fully_dynamic import (
            FullyDynamicSpectralSparsifier,
        )

        # instances stays at the structure's Θ(log n) default: fewer
        # instances weaken the w.h.p. per-level spanner property the
        # internal invariant asserts, and the oracle must not fuzz
        # structures outside their guarantee regime
        self.s = FullyDynamicSpectralSparsifier(
            n, edges, t=int(self.params.get("t", 2)), seed=seed,
            instances=self.params.get("instances"), cost=self.cost,
        )

    def _apply(self, batch):
        return self.s.update(batch.insertions, batch.deletions)

    def output_edges(self):
        return self.s.output_edges()

    def graph_edges(self):
        return self.s.edges()

    def check_internal(self):
        self.s.check_invariants()

    def _depth_bound(self) -> float:
        # a rebuild constructs the full chain: ceil(log m) sampling rounds
        # x t bundle levels, each a clustering of depth O(log^2 n) — the
        # generic k log^3 n envelope misses the log m chain factor
        t = int(self.params.get("t", 2))
        lg_m = math.log2(max(self.s.m, 4))
        lg_n = math.log2(max(self.n, 4))
        return 32.0 * t * lg_m * lg_n ** 3 + 256.0

    def _structure_violations(self, graph, deep):
        out = self.output_edges()
        viols: list[Violation] = []
        for v in (
            _graph_view_violation(self.graph_edges(), graph),
            check_output_subset(graph, out, what="sparsifier"),
        ):
            if v is not None:
                viols.append(v)
        weighted = self.s.weighted_edges()
        if set(weighted) != out:
            viols.append(Violation(
                "weighted-keys",
                "weighted_edges() keys disagree with output_edges()",
            ))
        if any(w <= 0 for w in weighted.values()):
            viols.append(Violation(
                "nonpositive-weight", "sparsifier contains weight <= 0"
            ))
        if deep:
            # a (1±ε)-spectral sparsifier preserves connectivity exactly
            v = check_same_components(self.n, graph, out, what="sparsifier")
            if v is not None:
                viols.append(v)
        return viols


class UltraSparseAdapter(OracleAdapter):
    """Theorem 1.4 batch-dynamic ultra-sparse spanner."""

    name = "ultrasparse"

    def _build(self, n, edges, seed):
        from repro.ultrasparse.dynamic import UltraSparseSpannerDynamic

        self.x = float(self.params.get("x", 2.0))
        self.s = UltraSparseSpannerDynamic(
            n, edges, x=self.x, seed=seed, cost=self.cost,
        )

    def _apply(self, batch):
        return self.s.update(batch.insertions, batch.deletions)

    def output_edges(self):
        return self.s.spanner_edges()

    def graph_edges(self):
        adj = self.s.adj
        return {
            norm_edge(u, v)
            for u in range(self.n) for v in adj[u] if u < v
        }

    def check_internal(self):
        self.s.check_invariants()
        assert self.s.spanner_size() == len(self.s.spanner_edges()), \
            "spanner_size() disagrees with spanner_edges()"

    def _structure_violations(self, graph, deep):
        out = self.output_edges()
        viols: list[Violation] = []
        for v in (
            _graph_view_violation(self.graph_edges(), graph),
            check_output_subset(graph, out),
            check_size(
                len(out), size_envelope_ultrasparse(self.n, self.x)
            ),
        ):
            if v is not None:
                viols.append(v)
        if deep:
            # the Lemma 5.1 stretch bound usually exceeds n at fuzz scale,
            # in which case this degenerates to connectivity preservation —
            # still the paper's headline property
            v = check_spanner_stretch(
                self.n, graph, out, self.s.stretch_bound()
            )
            if v is not None:
                viols.append(v)
        return viols


class ConnectivityAdapter(OracleAdapter):
    """HDT fully-dynamic spanning forest (``connectivity.hdt``)."""

    name = "hdt"

    def _build(self, n, edges, seed):
        from repro.connectivity.hdt import DynamicSpanningForest

        self.s = DynamicSpanningForest(n, edges, seed=seed, cost=self.cost)
        self._rng = np.random.default_rng(seed ^ 0x5EED)

    def _apply(self, batch):
        # replay semantics: deletions first, then insertions
        before = self.s.forest_edges()
        for u, v in batch.deletions:
            self.s.delete(u, v)
        for u, v in batch.insertions:
            self.s.insert(u, v)
        after = self.s.forest_edges()
        return after - before, before - after

    def output_edges(self):
        return self.s.forest_edges()

    def graph_edges(self):
        return {e for e in self.s._level}

    def check_internal(self):
        self.s.check_invariants()

    def _structure_violations(self, graph, deep):
        viols: list[Violation] = []
        for v in (
            _graph_view_violation(self.graph_edges(), graph),
            check_forest(self.n, graph, self.output_edges()),
        ):
            if v is not None:
                viols.append(v)
        # differential connectivity queries against the union-find baseline
        labels = components_of(self.n, graph)
        pairs = max(8, self.n // 2) if deep else 8
        for _ in range(pairs):
            u = int(self._rng.integers(0, self.n))
            v = int(self._rng.integers(0, self.n))
            want = labels[u] == labels[v]
            if self.s.connected(u, v) != want:
                viols.append(Violation(
                    "connected-query",
                    f"connected({u}, {v}) = {not want}, union-find "
                    f"baseline says {want}",
                ))
                break
        return viols


STRUCTURES: dict[str, Callable[..., OracleAdapter]] = {
    "spanner": FullyDynamicSpannerAdapter,
    "decremental": DecrementalSpannerAdapter,
    "dynamizer": DynamizerAdapter,
    "sparsifier": SparsifierAdapter,
    "ultrasparse": UltraSparseAdapter,
    "hdt": ConnectivityAdapter,
}


def make_adapter(
    structure: str,
    n: int,
    edges: Iterable[Edge],
    seed: int = 0,
    params: dict[str, Any] | None = None,
) -> OracleAdapter:
    """Build the named structure wrapped in its oracle adapter."""
    try:
        cls = STRUCTURES[structure]
    except KeyError:
        raise ValueError(
            f"unknown structure {structure!r}; "
            f"choose from {sorted(STRUCTURES)}"
        ) from None
    return cls(n, [norm_edge(u, v) for u, v in edges], seed, params or {})

"""Admission control: bounded queues, load shedding, request timeouts.

The serving queue is bounded; once its depth crosses ``max_pending`` the
controller sheds new updates with a ``retry_after`` hint instead of letting
latency grow without bound (classic backpressure).  Each admitted update
also carries a per-request timeout — if it is still undrained when the
timeout passes, the queue drops it at flush time rather than applying a
stale op.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AdmissionConfig", "AdmissionDecision", "AdmissionController"]


@dataclass
class AdmissionConfig:
    max_pending: int = 1024        # queue depth beyond which updates shed
    request_timeout: float | None = None  # seconds an op may wait, None = ∞
    # retry_after = time for the backlog overflow to drain, estimated as
    # (overflow / max_pending) * flush_interval — one flush retires about
    # max_pending ops — floored at flush_interval (retrying before the
    # next flush cannot succeed) and at min_retry_after.
    min_retry_after: float = 0.001
    # retry hint multiplier while a shard is being recovered: restarts
    # take several flush intervals (backoff + checkpoint/WAL replay), so
    # degraded-mode sheds tell clients to stay away a bit longer
    degraded_retry_factor: float = 4.0
    # reads in flight beyond which queries shed (None = unlimited); the
    # net server enforces this per tenant, so one tenant's read storm
    # cannot monopolize the serving process (see repro.net.tenants)
    max_inflight_queries: int | None = None


@dataclass
class AdmissionDecision:
    admitted: bool
    retry_after: float | None = None  # seconds; set when shed


class AdmissionController:
    """Decides whether an update request may enter the queue."""

    def __init__(self, config: AdmissionConfig | None = None) -> None:
        self.config = config or AdmissionConfig()
        self.shed_count = 0
        self.degraded_shed_count = 0
        self.query_shed_count = 0

    def admit_query(self, inflight: int,
                    service_time: float = 0.0) -> AdmissionDecision:
        """Decide whether a read may start given ``inflight`` reads already
        executing for this tenant.

        ``service_time`` is the caller's estimate of one query's engine
        time (the net server passes its simulated/observed per-query
        cost); the retry hint is the time for the excess to drain —
        ``overflow * service_time`` — floored at ``min_retry_after``.
        """
        cfg = self.config
        if cfg.max_inflight_queries is None \
                or inflight < cfg.max_inflight_queries:
            return AdmissionDecision(admitted=True)
        self.query_shed_count += 1
        overflow = inflight - cfg.max_inflight_queries + 1
        retry = max(cfg.min_retry_after, overflow * service_time)
        return AdmissionDecision(admitted=False, retry_after=retry)

    def admit(self, depth: int, flush_interval: float,
              degraded: bool = False) -> AdmissionDecision:
        """``depth`` is the current queue depth; ``flush_interval`` the
        batcher's latency deadline (used to size the retry hint).

        ``degraded=True`` means a shard is mid-recovery: the request is
        shed unconditionally (the structure cannot accept writes until
        its workers are whole again) with a retry hint scaled by
        ``degraded_retry_factor``.
        """
        cfg = self.config
        if degraded:
            self.degraded_shed_count += 1
            retry = max(cfg.min_retry_after,
                        flush_interval * cfg.degraded_retry_factor)
            return AdmissionDecision(admitted=False, retry_after=retry)
        if depth < cfg.max_pending:
            return AdmissionDecision(admitted=True)
        self.shed_count += 1
        overflow = depth - cfg.max_pending + 1
        retry = max(
            cfg.min_retry_after,
            flush_interval,
            flush_interval * overflow / max(cfg.max_pending, 1),
        )
        return AdmissionDecision(admitted=False, retry_after=retry)

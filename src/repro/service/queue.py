"""Ingestion queue with update coalescing for the serving engine.

Clients submit single-edge inserts/deletes; the queue validates each op
against its *predicted* membership view (the structure's edge set plus the
net effect of everything still pending), so the batches it drains are
always legal per :meth:`repro.workloads.Workload.replay` semantics:

* inserting an edge that is already (effectively) present is rejected as a
  duplicate — unless it is pending insertion, in which case it dedupes;
* deleting an edge that is (effectively) absent is rejected — unless it is
  pending deletion, in which case it dedupes;
* deleting a pending insertion cancels both ops before the structure ever
  sees them (the coalescing win the related batch-dynamic-tree harnesses
  report);
* inserting a pending deletion turns it into a delete + re-insert.

The actual fold is delegated to the canonical
:meth:`repro.workloads.UpdateBatch.coalesce` routine so generators and the
service share one definition.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.graph.dynamic_graph import Edge, norm_edge
from repro.workloads.streams import OP_DELETE, OP_INSERT, UpdateBatch

__all__ = [
    "ACCEPTED",
    "COALESCED_CANCEL",
    "COALESCED_DEDUP",
    "REJECTED_ABSENT",
    "REJECTED_DUPLICATE",
    "CoalescingQueue",
    "DrainResult",
    "PendingOp",
]

# offer() outcomes
ACCEPTED = "accepted"                    # op is pending as-is
COALESCED_DEDUP = "coalesced_dedup"      # absorbed into an identical pending op
COALESCED_CANCEL = "coalesced_cancel"    # cancelled an opposite pending op
REJECTED_DUPLICATE = "rejected_duplicate"  # insert of a present edge
REJECTED_ABSENT = "rejected_absent"        # delete of an absent edge

_OK = (ACCEPTED, COALESCED_DEDUP, COALESCED_CANCEL)


@dataclass
class PendingOp:
    op: str
    edge: Edge
    enqueued_at: float
    deadline: float | None = None  # absolute time after which the op expires


@dataclass
class DrainResult:
    """One drained batch plus its coalescing accounting."""

    batch: UpdateBatch
    raw_ops: int           # accepted ops folded into this batch
    expired_ops: int       # ops dropped because their deadline passed
    coalesced_away: int    # raw - expired - batch.size

    @property
    def coalesce_ratio(self) -> float:
        """Fraction of accepted ops the fold eliminated (0 = none)."""
        live = self.raw_ops - self.expired_ops
        return self.coalesced_away / live if live else 0.0


class CoalescingQueue:
    """Bounded-validation ingestion queue (see module docstring).

    Parameters
    ----------
    present:
        The edge set currently held by the structure; the queue keeps this
        view in sync as batches drain.
    clock:
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        present: Iterable[Edge] = (),
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._live: set[Edge] = set(present)
        self._clock = clock
        self._ops: list[PendingOp] = []
        # pending net state per edge: +1 insert, -1 delete, 2 del+reinsert
        self._state: dict[Edge, int] = {}
        # stats over the queue's lifetime
        self.accepted = 0
        self.deduped = 0
        self.cancelled = 0
        self.rejected = 0
        self.expired = 0

    # -- submitting ----------------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of accepted ops waiting to drain (backpressure signal)."""
        return len(self._ops)

    def effectively_present(self, edge: Edge) -> bool:
        """Membership after all pending ops would apply."""
        s = self._state.get(edge)
        if s is None:
            return edge in self._live
        return s in (+1, 2)

    def offer(
        self,
        op: str,
        edge: Edge,
        now: float | None = None,
        timeout: float | None = None,
    ) -> str:
        """Validate and enqueue one op; returns an outcome constant."""
        if op not in (OP_INSERT, OP_DELETE):
            raise ValueError(f"unknown op {op!r}")
        edge = norm_edge(*edge)
        if now is None:
            now = self._clock()
        s = self._state.get(edge)
        if op == OP_INSERT:
            if s in (+1, 2):
                self.deduped += 1
                return COALESCED_DEDUP
            if s is None and edge in self._live:
                self.rejected += 1
                return REJECTED_DUPLICATE
            outcome = ACCEPTED if s is None else COALESCED_CANCEL
            self._state[edge] = +1 if s is None else 2
        else:
            if s == -1:
                self.deduped += 1
                return COALESCED_DEDUP
            if s is None and edge not in self._live:
                self.rejected += 1
                return REJECTED_ABSENT
            if s is None:
                self._state[edge] = -1
                outcome = ACCEPTED
            elif s == +1:
                del self._state[edge]
                outcome = COALESCED_CANCEL
            else:  # s == 2: drop the re-insert, keep the delete
                self._state[edge] = -1
                outcome = COALESCED_CANCEL
        deadline = None if timeout is None else now + timeout
        self._ops.append(PendingOp(op, edge, now, deadline))
        self.accepted += 1
        if outcome == COALESCED_CANCEL:
            self.cancelled += 1
        return outcome

    def oldest_enqueued_at(self) -> float | None:
        """Enqueue time of the oldest pending op (drives the flush deadline)."""
        return self._ops[0].enqueued_at if self._ops else None

    # -- draining ------------------------------------------------------------

    def drain(self, now: float | None = None) -> DrainResult:
        """Coalesce and remove everything pending; advances the live view.

        Expired ops are dropped in whole per-edge groups: an edge's pending
        ops are discarded only if *every* op on that edge has passed its
        deadline (partial expiry could split an insert/delete pair and make
        the batch illegal).
        """
        if now is None:
            now = self._clock()
        ops, self._ops = self._ops, []
        self._state.clear()
        raw = len(ops)
        expired_edges = set()
        by_edge: dict[Edge, list[PendingOp]] = {}
        for p in ops:
            by_edge.setdefault(p.edge, []).append(p)
        for edge, group in by_edge.items():
            if all(p.deadline is not None and p.deadline < now
                   for p in group):
                expired_edges.add(edge)
        live_ops = [(p.op, p.edge) for p in ops
                    if p.edge not in expired_edges]
        n_expired = raw - len(live_ops)
        self.expired += n_expired
        batch = UpdateBatch.coalesce(live_ops)
        for e in batch.deletions:
            self._live.remove(e)
        for e in batch.insertions:
            self._live.add(e)
        return DrainResult(
            batch=batch,
            raw_ops=raw,
            expired_ops=n_expired,
            coalesced_away=raw - n_expired - batch.size,
        )

    def sync_applied(self, batch: UpdateBatch) -> None:
        """Advance the membership view by a batch applied *outside* the
        queue (the replica log-shipping path: the primary already
        validated and coalesced it).  Refused while ops are pending —
        mixing an external batch into a half-built local batch would
        invalidate the pending-state bookkeeping.
        """
        if self._ops:
            raise RuntimeError(
                "sync_applied with pending local ops; replicas are "
                "read-only and must never queue writes"
            )
        for e in batch.deletions:
            self._live.remove(e)
        for e in batch.insertions:
            self._live.add(e)

    # -- inspection ----------------------------------------------------------

    @property
    def live_edges(self) -> set[Edge]:
        """Copy of the membership view as of the last drain."""
        return set(self._live)

    def pending_ops(self) -> list[tuple[str, Edge]]:
        """Snapshot of accepted-but-undrained ops, in arrival order."""
        return [(p.op, p.edge) for p in self._ops]

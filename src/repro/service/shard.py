"""Sharded executor: S independent structure instances in worker processes.

The paper's structures share no state across disjoint edge sets, so the
engine can escape the GIL by hash-partitioning edges over ``S`` shards,
each a full structure instance on the common vertex set, running in its
own ``multiprocessing`` worker.  A flush scatters the coalesced batch into
per-shard sub-batches (shards apply them in parallel), then gathers the
``(δ_ins, δ_del)`` deltas plus cost-model work/depth; shard work *sums*
while shard depth *maxes*, exactly the cost model's parallel-composition
rule.

``processes=False`` runs the same protocol in-process (deterministic, no
fork needed) — tests and the benchmark baseline use it; the CLI demo uses
real processes where the platform provides them.

Supervision (PR 4): every worker interaction carries a recv deadline, and
a dead or hung worker is restarted — with exponential backoff — from the
last checkpoint plus a WAL-tail replay (or, lacking durable state, from
the in-memory applied-batch history).  The in-flight sub-batch is then
retried; after ``max_batch_attempts`` consecutive crash-loops on the same
batch it is quarantined instead, keeping the engine live on poison input.
All of it is observable through the :class:`ApplyResult` recovery fields
and, one level up, the service's :class:`MetricsRegistry`.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import threading
import time
from dataclasses import dataclass
from typing import Any

from repro.graph.dynamic_graph import Edge
from repro.pram.cost import CostModel
from repro.resilience.faults import NULL_INJECTOR, FaultInjector
from repro.resilience.manager import RecoveryManager, SupervisionConfig
from repro.resilience.wal import WalCorruptionError
from repro.service.engine import ApplyResult, build_backend
from repro.workloads.streams import UpdateBatch

__all__ = [
    "ShardDeadError",
    "ShardedExecutor",
    "ShardHealth",
    "edge_shard",
    "split_by_shard",
]


class ShardDeadError(RuntimeError):
    """A worker died or hung and could not serve the request."""


def edge_shard(edge: Edge, shards: int) -> int:
    """Deterministic edge → shard router (stable across processes)."""
    u, v = edge
    return (u * 1_000_003 + v * 8_191) % shards


def split_by_shard(
    edges: list[Edge] | tuple[Edge, ...], shards: int
) -> list[list[Edge]]:
    """Partition ``edges`` into per-shard lists via :func:`edge_shard`."""
    out: list[list[Edge]] = [[] for _ in range(shards)]
    for e in edges:
        out[edge_shard(e, shards)].append(e)
    return out


#: Pipes default to protocol-2 pickles; the highest protocol (5) frames
#: large update batches with out-of-band-friendly encoding and measurably
#: cheaper int/tuple serialization on the flush path.
_PICKLE_PROTO = pickle.HIGHEST_PROTOCOL


def _pipe_send(conn, obj) -> None:
    conn.send_bytes(pickle.dumps(obj, _PICKLE_PROTO))


def _pipe_recv(conn):
    return pickle.loads(conn.recv_bytes())


def _serve_backend(conn, spec: dict[str, Any]) -> None:
    """Worker loop: build the backend, answer update/query messages."""
    cost = CostModel()
    backend = build_backend(spec, cost)
    while True:
        msg = _pipe_recv(conn)
        cmd = msg[0]
        if cmd == "update":
            _, ins, dels = msg
            with cost.frame() as fr:
                d_ins, d_del = backend.update(insertions=ins, deletions=dels)
            # reply envelope: plain lists pickle smaller/faster than sets
            # and the parent folds them with set.update() anyway
            _pipe_send(conn, (list(d_ins), list(d_del), fr.work, fr.depth))
        elif cmd == "edges":
            _pipe_send(conn, list(backend.output_edges()))
        elif cmd == "size":
            _pipe_send(conn, len(backend.output_edges()))
        elif cmd == "ping":
            _pipe_send(conn, ("pong",))
        elif cmd == "stop":
            _pipe_send(conn, ("bye",))
            conn.close()
            return
        else:  # pragma: no cover - protocol misuse
            _pipe_send(conn, ValueError(f"unknown command {cmd!r}"))


class _ProcessShard:
    """One worker process plus its parent-side pipe end."""

    def __init__(self, spec: dict[str, Any], ctx) -> None:
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(
            target=_serve_backend, args=(child, spec), daemon=True
        )
        self.proc.start()
        child.close()

    def send(self, msg) -> None:
        _pipe_send(self.conn, msg)

    def recv(self):
        return _pipe_recv(self.conn)

    def recv_within(self, deadline: float):
        """Reply within ``deadline`` seconds, else :class:`ShardDeadError`."""
        try:
            if not self.conn.poll(deadline):
                raise ShardDeadError(
                    f"worker pid={self.proc.pid} missed its "
                    f"{deadline:.3f}s reply deadline"
                )
            return _pipe_recv(self.conn)
        except (EOFError, BrokenPipeError, OSError, pickle.PickleError) as exc:
            raise ShardDeadError(f"worker pipe failed: {exc!r}") from exc

    def drain_one(self, timeout: float = 0.0) -> bool:
        """Discard one buffered reply if present (fault injection)."""
        try:
            if self.conn.poll(timeout):
                self.conn.recv_bytes()
                return True
        except (EOFError, BrokenPipeError, OSError):
            pass
        return False

    def alive(self) -> bool:
        return self.proc.is_alive()

    def kill(self) -> None:
        """SIGKILL the worker (no cleanup — that is the point)."""
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=1.0)

    def close(self) -> None:
        try:
            _pipe_send(self.conn, ("stop",))
            if self.conn.poll(1.0):
                self.conn.recv_bytes()
        except (BrokenPipeError, EOFError, OSError):
            pass
        self.proc.join(timeout=2.0)
        if self.proc.is_alive():
            self.proc.terminate()
            self.proc.join(timeout=1.0)
        if self.proc.is_alive():  # pragma: no cover - stubborn worker
            self.proc.kill()
            self.proc.join(timeout=1.0)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass


class _InprocShard:
    """Same message protocol, executed synchronously in-process.

    Supports simulated death (:meth:`kill`) so supervision and the chaos
    harness run deterministically without ``multiprocessing``.
    """

    def __init__(self, spec: dict[str, Any]) -> None:
        self._cost = CostModel()
        self._backend = build_backend(spec, self._cost)
        self._reply = None
        self._dead = False

    def send(self, msg) -> None:
        if self._dead:
            raise BrokenPipeError("in-process shard was killed")
        cmd = msg[0]
        if cmd == "update":
            _, ins, dels = msg
            try:
                with self._cost.frame() as fr:
                    d_ins, d_del = self._backend.update(
                        insertions=ins, deletions=dels
                    )
            except Exception as exc:
                # a real worker process dies on an update that crashes the
                # backend (poison batch); mirror that so supervision sees
                # the same failure mode in deterministic in-process runs
                self.kill()
                raise BrokenPipeError(
                    f"in-process worker crashed applying batch: {exc!r}"
                ) from exc
            self._reply = (list(d_ins), list(d_del), fr.work, fr.depth)
        elif cmd == "edges":
            self._reply = list(self._backend.output_edges())
        elif cmd == "size":
            self._reply = len(self._backend.output_edges())
        elif cmd == "ping":
            self._reply = ("pong",)
        elif cmd == "stop":
            self._reply = ("bye",)
        else:
            raise ValueError(f"unknown command {cmd!r}")

    def recv(self):
        if self._dead:
            raise EOFError("in-process shard was killed")
        reply, self._reply = self._reply, None
        return reply

    def recv_within(self, deadline: float):
        try:
            return self.recv()
        except EOFError as exc:
            raise ShardDeadError(str(exc)) from exc

    def drain_one(self, timeout: float = 0.0) -> bool:
        if self._reply is not None:
            self._reply = None
            return True
        return False

    def alive(self) -> bool:
        return not self._dead

    def kill(self) -> None:
        self._dead = True
        self._reply = None
        self._backend = None  # state dies with the "process"

    def close(self) -> None:
        pass


@dataclass
class ShardHealth:
    """One shard's liveness as seen by :meth:`ShardedExecutor.health_check`."""

    shard: int
    alive: bool
    restarted: bool = False


class ShardedExecutor:
    """Partition one backend spec across ``shards`` independent workers.

    Parameters
    ----------
    spec:
        Backend spec as for :func:`repro.service.engine.build_backend`;
        its ``edges`` are routed to shards, and shard ``i`` gets
        ``seed + i`` so instances stay independent yet reproducible.
    shards:
        Number of partitions (>= 1).
    processes:
        Run workers as real processes (parallel, needs a working
        ``multiprocessing`` start method) or in-process (deterministic).
    start_method:
        Forwarded to :func:`multiprocessing.get_context`; defaults to
        ``fork`` where available (cheap, inherits the parent image) else
        the platform default.
    supervision:
        Deadlines/backoff/quarantine policy; None disables supervision
        entirely (a dead worker then surfaces as an exception, the
        pre-PR-4 behaviour).
    recovery:
        A :class:`~repro.resilience.manager.RecoveryManager`; when set,
        restarted workers rebuild from checkpoint + WAL replay, else from
        the in-memory applied-batch history.
    injector:
        Fault-injection hooks (chaos harness); defaults to no-op.
    """

    def __init__(
        self,
        spec: dict[str, Any],
        shards: int,
        processes: bool = False,
        start_method: str | None = None,
        supervision: SupervisionConfig | None = None,
        recovery: RecoveryManager | None = None,
        injector: FaultInjector | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self.processes = processes
        self.supervision = supervision
        self.recovery = recovery
        self.injector = injector or NULL_INJECTOR
        base_seed = spec.get("seed", 0)
        initial = [tuple(e) for e in spec.get("edges", ())]
        self._initial_edges = initial
        parts = split_by_shard(initial, shards)
        self.shard_specs: list[dict[str, Any]] = []
        for i in range(shards):
            sub = dict(spec)
            sub["edges"] = parts[i]
            sub["seed"] = base_seed + i
            self.shard_specs.append(sub)
        self._ctx = None
        if processes:
            if start_method is None:
                methods = mp.get_all_start_methods()
                start_method = "fork" if "fork" in methods else None
            self._ctx = mp.get_context(start_method)
        self._shards = [self._spawn(self.shard_specs[i])
                        for i in range(shards)]
        # per-shard applied sub-batches, for offline replay verification
        self.applied_batches: list[list[UpdateBatch]] = [
            [] for _ in range(shards)
        ]
        # per-shard *graph* edge sets (checkpoint payload / ground truth)
        self._graph: list[set[Edge]] = [set(p) for p in parts]
        self._restart_streak = [0] * shards   # resets on successful apply
        self.restarts_total = 0
        self.quarantined: list[tuple[int | None, int, UpdateBatch]] = []
        self.wal_fallbacks = 0
        self.degraded = threading.Event()  # set while any shard recovers
        self._closed = False

    def _spawn(self, spec: dict[str, Any]):
        if self.processes:
            return _ProcessShard(spec, self._ctx)
        return _InprocShard(spec)

    # -- executor protocol ---------------------------------------------------

    def initial_edges(self) -> set[Edge]:
        """Union of every shard's construction edge set."""
        return {e for s in self.shard_specs for e in s["edges"]}

    def output_edges(self) -> set[Edge]:
        """Alias for :meth:`gather_edges` (executor protocol)."""
        return self.gather_edges()

    def shard_graphs(self) -> list[set[Edge]]:
        """Per-shard graph edge sets (the checkpoint payload)."""
        return [set(g) for g in self._graph]

    def graph_union(self) -> set[Edge]:
        """The graph edge set implied by every applied batch."""
        out: set[Edge] = set()
        for g in self._graph:
            out |= g
        return out

    def apply(self, batch: UpdateBatch, seq: int | None = None) -> ApplyResult:
        """Scatter the batch, apply on every touched shard, gather deltas.

        With supervision enabled a dead/hung shard is restarted from the
        last checkpoint + WAL replay and its sub-batch retried; after
        ``max_batch_attempts`` consecutive crashes on this batch the
        sub-batch is quarantined (recorded in :attr:`quarantined`) and the
        shard continues without it.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        ins_parts = split_by_shard(batch.insertions, self.shards)
        del_parts = split_by_shard(batch.deletions, self.shards)
        touched = [
            i for i in range(self.shards)
            if ins_parts[i] or del_parts[i]
        ]
        sup = self.supervision
        sent: dict[int, bool] = {}
        for i in touched:  # scatter first: process shards run in parallel
            if self.injector.on_apply(i, "pre", seq) == "kill":
                self._shards[i].kill()
            sent[i] = self._try_send(
                i, ("update", ins_parts[i], del_parts[i])
            )
        delta_ins: set[Edge] = set()
        delta_del: set[Edge] = set()
        work = 0
        depth = 0
        critical = 0
        recovered: list[int] = []
        quarantined: list[int] = []
        restarts = 0
        recovery_seconds = 0.0
        for i in touched:
            sub = UpdateBatch(insertions=ins_parts[i],
                              deletions=del_parts[i])
            reply = self._gather_one(i, sent[i], seq)
            crashes = 0 if reply is not None else 1
            while reply is None:
                if sup is None:
                    raise ShardDeadError(
                        f"shard {i} failed and supervision is disabled"
                    )
                if crashes > sup.max_batch_attempts:
                    # poison batch: restart the shard *without* it and
                    # keep serving
                    t0 = time.perf_counter()
                    restarts += self._restart_shard(i)
                    recovery_seconds += time.perf_counter() - t0
                    recovered.append(i)
                    quarantined.append(i)
                    self.quarantined.append((seq, i, sub))
                    break
                t0 = time.perf_counter()
                restarts += self._restart_shard(i)
                recovery_seconds += time.perf_counter() - t0
                recovered.append(i)
                ok = self._try_send(i, ("update", ins_parts[i],
                                        del_parts[i]))
                reply = self._gather_one(i, ok, seq)
                if reply is None:
                    crashes += 1
            if reply is None:  # quarantined
                continue
            if self.injector.on_apply(i, "post", seq) == "kill":
                self._shards[i].kill()
            d_ins, d_del, w, d = reply
            self.applied_batches[i].append(sub)
            self._graph[i].difference_update(del_parts[i])
            self._graph[i].update(ins_parts[i])
            self._restart_streak[i] = 0
            delta_ins.update(d_ins)
            delta_del.update(d_del)
            work += w
            # shards are parallel: depth and critical-path work max
            depth = max(depth, d)
            critical = max(critical, w)
        return ApplyResult(
            delta_ins, delta_del, work, depth, critical_work=critical,
            recovered_shards=tuple(dict.fromkeys(recovered)),
            quarantined_shards=tuple(quarantined),
            restarts=restarts,
            recovery_seconds=recovery_seconds,
        )

    # -- supervision ---------------------------------------------------------

    def _try_send(self, i: int, msg) -> bool:
        try:
            self._shards[i].send(msg)
            return True
        except (BrokenPipeError, OSError, EOFError):
            return False

    def _gather_one(self, i: int, was_sent: bool, seq: int | None):
        """One shard's update reply, or None on death/timeout."""
        if not was_sent:
            return None
        deadline = (self.supervision.recv_deadline
                    if self.supervision else 60.0)
        action = self.injector.on_recv(i, seq)
        if action == "drop":
            # simulate a lost reply: swallow whatever arrives in-deadline
            self._shards[i].drain_one(timeout=min(deadline, 0.25))
            return None
        if isinstance(action, tuple) and action[0] == "delay":
            # simulate a stalled worker: the reply misses its deadline
            time.sleep(min(action[1], deadline))
            return None
        try:
            return self._shards[i].recv_within(deadline)
        except ShardDeadError:
            return None

    def _recovery_source(self, i: int) -> tuple[set[Edge],
                                                list[UpdateBatch], bool]:
        """(base edges, replay batches, used_wal) for restarting shard i."""
        if self.recovery is not None:
            try:
                skip = {s for s, sh, _ in self.quarantined
                        if sh == i and s is not None}
                base, replay = self.recovery.shard_recovery_plan(
                    i, self.shards, self._initial_edges, skip_seqs=skip
                )
                return base, replay, True
            except WalCorruptionError:
                # the log is damaged mid-stream; fall back to the exact
                # in-memory history (only possible while the parent lives)
                self.wal_fallbacks += 1
        base = set(split_by_shard(self._initial_edges, self.shards)[i])
        return base, list(self.applied_batches[i]), False

    def _restart_shard(self, i: int) -> int:
        """Kill, back off, respawn from recovered state.  Returns 1."""
        sup = self.supervision or SupervisionConfig()
        self.degraded.set()
        try:
            shard = self._shards[i]
            try:
                shard.kill()
            finally:
                shard.close()
            streak = self._restart_streak[i]
            delay = min(sup.backoff_cap, sup.backoff_base * (2 ** streak))
            if delay > 0:
                time.sleep(delay)
            self._restart_streak[i] = streak + 1
            self.restarts_total += 1
            base, replay, used_wal = self._recovery_source(i)
            spec = dict(self.shard_specs[i])
            spec["edges"] = sorted(base)
            fresh = self._spawn(spec)
            self._shards[i] = fresh
            deadline = sup.recv_deadline
            for b in replay:
                fresh.send(("update", b.insertions, b.deletions))
                fresh.recv_within(deadline)
            # re-anchor the offline-verification view on the recovered
            # construction: spec' + replayed tail is the shard's history now
            self.shard_specs[i] = spec
            self.applied_batches[i] = list(replay)
            graph = set(base)
            for b in replay:
                graph -= set(b.deletions)
                graph |= set(b.insertions)
            self._graph[i] = graph
            self.injector.on_restart(i, self._restart_streak[i])
            return 1
        finally:
            self.degraded.clear()

    def health_check(self, restart: bool = True) -> list[ShardHealth]:
        """Probe every worker (liveness + ping); optionally restart dead
        ones proactively so the next flush does not pay the recovery."""
        out: list[ShardHealth] = []
        deadline = (self.supervision.recv_deadline
                    if self.supervision else 1.0)
        for i, shard in enumerate(self._shards):
            alive = shard.alive()
            if alive:
                if self._try_send(i, ("ping",)):
                    try:
                        alive = shard.recv_within(deadline) == ("pong",)
                    except ShardDeadError:
                        alive = False
                else:
                    alive = False
            restarted = False
            if not alive and restart and self.supervision is not None:
                self._restart_shard(i)
                restarted = True
            out.append(ShardHealth(shard=i, alive=alive,
                                   restarted=restarted))
        return out

    # -- scatter/gather queries ----------------------------------------------

    def gather_edges(self) -> set[Edge]:
        """Union of every shard's output edges (scatter/gather).

        Supervised executors restart a dead shard mid-gather instead of
        raising, so a query barrage never wedges on a crashed worker.
        """
        out: set[Edge] = set()
        for i in range(self.shards):
            reply = None
            if self._try_send(i, ("edges",)):
                try:
                    deadline = (self.supervision.recv_deadline
                                if self.supervision else 60.0)
                    reply = self._shards[i].recv_within(deadline)
                except ShardDeadError:
                    reply = None
            if reply is None:
                if self.supervision is None:
                    raise ShardDeadError(f"shard {i} died during gather")
                self._restart_shard(i)
                self._shards[i].send(("edges",))
                reply = self._shards[i].recv_within(
                    self.supervision.recv_deadline
                )
            out.update(reply)
        return out

    def scatter_sizes(self) -> list[int]:
        """Per-shard output sizes (occupancy diagnostics)."""
        for s in self._shards:
            s.send(("size",))
        return [s.recv() for s in self._shards]

    def close(self) -> None:
        """Stop every worker and release their pipes.

        Idempotent and exception-safe: a shard that already died mid-run
        is skipped rather than hung on, and one shard's failure never
        prevents the rest from being reaped.
        """
        if self._closed:
            return
        self._closed = True
        for s in self._shards:
            try:
                s.close()
            except Exception:  # pragma: no cover - best-effort teardown
                pass

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Sharded executor: S independent structure instances in worker processes.

The paper's structures share no state across disjoint edge sets, so the
engine can escape the GIL by hash-partitioning edges over ``S`` shards,
each a full structure instance on the common vertex set, running in its
own ``multiprocessing`` worker.  A flush scatters the coalesced batch into
per-shard sub-batches (shards apply them in parallel), then gathers the
``(δ_ins, δ_del)`` deltas plus cost-model work/depth; shard work *sums*
while shard depth *maxes*, exactly the cost model's parallel-composition
rule.

``processes=False`` runs the same protocol in-process (deterministic, no
fork needed) — tests and the benchmark baseline use it; the CLI demo uses
real processes where the platform provides them.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Any

from repro.graph.dynamic_graph import Edge
from repro.pram.cost import CostModel
from repro.service.engine import ApplyResult, build_backend
from repro.workloads.streams import UpdateBatch

__all__ = ["ShardedExecutor", "edge_shard", "split_by_shard"]


def edge_shard(edge: Edge, shards: int) -> int:
    """Deterministic edge → shard router (stable across processes)."""
    u, v = edge
    return (u * 1_000_003 + v * 8_191) % shards


def split_by_shard(
    edges: list[Edge] | tuple[Edge, ...], shards: int
) -> list[list[Edge]]:
    """Partition ``edges`` into per-shard lists via :func:`edge_shard`."""
    out: list[list[Edge]] = [[] for _ in range(shards)]
    for e in edges:
        out[edge_shard(e, shards)].append(e)
    return out


def _serve_backend(conn, spec: dict[str, Any]) -> None:
    """Worker loop: build the backend, answer update/query messages."""
    cost = CostModel()
    backend = build_backend(spec, cost)
    while True:
        msg = conn.recv()
        cmd = msg[0]
        if cmd == "update":
            _, ins, dels = msg
            with cost.frame() as fr:
                d_ins, d_del = backend.update(insertions=ins, deletions=dels)
            conn.send((set(d_ins), set(d_del), fr.work, fr.depth))
        elif cmd == "edges":
            conn.send(backend.output_edges())
        elif cmd == "size":
            conn.send(len(backend.output_edges()))
        elif cmd == "stop":
            conn.send(("bye",))
            conn.close()
            return
        else:  # pragma: no cover - protocol misuse
            conn.send(ValueError(f"unknown command {cmd!r}"))


class _ProcessShard:
    """One worker process plus its parent-side pipe end."""

    def __init__(self, spec: dict[str, Any], ctx) -> None:
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(
            target=_serve_backend, args=(child, spec), daemon=True
        )
        self.proc.start()
        child.close()

    def send(self, msg) -> None:
        self.conn.send(msg)

    def recv(self):
        return self.conn.recv()

    def close(self) -> None:
        try:
            self.conn.send(("stop",))
            self.conn.recv()
        except (BrokenPipeError, EOFError, OSError):
            pass
        self.proc.join(timeout=5.0)
        if self.proc.is_alive():  # pragma: no cover - hung worker
            self.proc.terminate()
        self.conn.close()


class _InprocShard:
    """Same message protocol, executed synchronously in-process."""

    def __init__(self, spec: dict[str, Any]) -> None:
        self._cost = CostModel()
        self._backend = build_backend(spec, self._cost)
        self._reply = None

    def send(self, msg) -> None:
        cmd = msg[0]
        if cmd == "update":
            _, ins, dels = msg
            with self._cost.frame() as fr:
                d_ins, d_del = self._backend.update(
                    insertions=ins, deletions=dels
                )
            self._reply = (set(d_ins), set(d_del), fr.work, fr.depth)
        elif cmd == "edges":
            self._reply = self._backend.output_edges()
        elif cmd == "size":
            self._reply = len(self._backend.output_edges())
        elif cmd == "stop":
            self._reply = ("bye",)
        else:
            raise ValueError(f"unknown command {cmd!r}")

    def recv(self):
        reply, self._reply = self._reply, None
        return reply

    def close(self) -> None:
        pass


class ShardedExecutor:
    """Partition one backend spec across ``shards`` independent workers.

    Parameters
    ----------
    spec:
        Backend spec as for :func:`repro.service.engine.build_backend`;
        its ``edges`` are routed to shards, and shard ``i`` gets
        ``seed + i`` so instances stay independent yet reproducible.
    shards:
        Number of partitions (>= 1).
    processes:
        Run workers as real processes (parallel, needs a working
        ``multiprocessing`` start method) or in-process (deterministic).
    start_method:
        Forwarded to :func:`multiprocessing.get_context`; defaults to
        ``fork`` where available (cheap, inherits the parent image) else
        the platform default.
    """

    def __init__(
        self,
        spec: dict[str, Any],
        shards: int,
        processes: bool = False,
        start_method: str | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        self.processes = processes
        base_seed = spec.get("seed", 0)
        initial = [tuple(e) for e in spec.get("edges", ())]
        parts = split_by_shard(initial, shards)
        self.shard_specs: list[dict[str, Any]] = []
        for i in range(shards):
            sub = dict(spec)
            sub["edges"] = parts[i]
            sub["seed"] = base_seed + i
            self.shard_specs.append(sub)
        if processes:
            if start_method is None:
                methods = mp.get_all_start_methods()
                start_method = "fork" if "fork" in methods else None
            ctx = mp.get_context(start_method)
            self._shards = [
                _ProcessShard(s, ctx) for s in self.shard_specs
            ]
        else:
            self._shards = [_InprocShard(s) for s in self.shard_specs]
        # per-shard applied sub-batches, for offline replay verification
        self.applied_batches: list[list[UpdateBatch]] = [
            [] for _ in range(shards)
        ]

    # -- executor protocol ---------------------------------------------------

    def initial_edges(self) -> set[Edge]:
        """Union of every shard's construction edge set."""
        return {e for s in self.shard_specs for e in s["edges"]}

    def output_edges(self) -> set[Edge]:
        """Alias for :meth:`gather_edges` (executor protocol)."""
        return self.gather_edges()

    def apply(self, batch: UpdateBatch) -> ApplyResult:
        """Scatter the batch, apply on every touched shard, gather deltas."""
        ins_parts = split_by_shard(batch.insertions, self.shards)
        del_parts = split_by_shard(batch.deletions, self.shards)
        touched = [
            i for i in range(self.shards)
            if ins_parts[i] or del_parts[i]
        ]
        for i in touched:  # scatter first: process shards run in parallel
            self._shards[i].send(("update", ins_parts[i], del_parts[i]))
        delta_ins: set[Edge] = set()
        delta_del: set[Edge] = set()
        work = 0
        depth = 0
        critical = 0
        for i in touched:
            d_ins, d_del, w, d = self._shards[i].recv()
            self.applied_batches[i].append(
                UpdateBatch(insertions=ins_parts[i], deletions=del_parts[i])
            )
            delta_ins |= d_ins
            delta_del |= d_del
            work += w
            # shards are parallel: depth and critical-path work max
            depth = max(depth, d)
            critical = max(critical, w)
        return ApplyResult(delta_ins, delta_del, work, depth,
                           critical_work=critical)

    # -- scatter/gather queries ----------------------------------------------

    def gather_edges(self) -> set[Edge]:
        """Union of every shard's output edges (scatter/gather)."""
        for s in self._shards:
            s.send(("edges",))
        out: set[Edge] = set()
        for s in self._shards:
            out |= s.recv()
        return out

    def scatter_sizes(self) -> list[int]:
        """Per-shard output sizes (occupancy diagnostics)."""
        for s in self._shards:
            s.send(("size",))
        return [s.recv() for s in self._shards]

    def close(self) -> None:
        """Stop every worker and release their pipes."""
        for s in self._shards:
            s.close()

    def __enter__(self) -> "ShardedExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

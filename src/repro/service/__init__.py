"""Asynchronous batch-dynamic serving engine (queue → batcher → shards).

The paper's structures amortize work over *batches*; this package turns a
stream of individual client requests into well-shaped batches and serves
queries from snapshot-consistent state:

* :mod:`repro.service.queue` — ingestion queue with update coalescing,
* :mod:`repro.service.batcher` — adaptive micro-batching (size/deadline),
* :mod:`repro.service.admission` — bounded queues, shedding, timeouts,
* :mod:`repro.service.engine` — the :class:`SpannerService` facade,
* :mod:`repro.service.shard` — sharded multiprocessing executor,
* :mod:`repro.service.metrics` — counters/histograms registry,
* :mod:`repro.service.driver` — the end-to-end serve demo + verification.

Fault tolerance (WAL, checkpoints, shard supervision, chaos testing)
lives in :mod:`repro.resilience`; see ``docs/resilience.md``.

See ``docs/service.md`` for the architecture and tuning guide.
"""

from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
)
from repro.service.batcher import AdaptiveBatcher, BatcherConfig
from repro.service.driver import ServeConfig, ServeReport, run_serve
from repro.service.engine import (
    ApplyResult,
    LocalExecutor,
    PendingQuery,
    QueryResult,
    ServiceConfig,
    SpannerService,
    SubmitResponse,
    build_backend,
)
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.queue import CoalescingQueue, DrainResult
from repro.service.shard import (
    ShardDeadError,
    ShardedExecutor,
    ShardHealth,
    edge_shard,
    split_by_shard,
)

__all__ = [
    "AdaptiveBatcher",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "ApplyResult",
    "BatcherConfig",
    "CoalescingQueue",
    "Counter",
    "DrainResult",
    "Gauge",
    "Histogram",
    "LocalExecutor",
    "MetricsRegistry",
    "PendingQuery",
    "QueryResult",
    "ServeConfig",
    "ServeReport",
    "ServiceConfig",
    "SpannerService",
    "SubmitResponse",
    "ShardDeadError",
    "ShardHealth",
    "ShardedExecutor",
    "build_backend",
    "edge_shard",
    "run_serve",
    "split_by_shard",
]

"""End-to-end serve demo: request stream → service → verification.

Drives a seeded stream of single-edge update and query requests through a
:class:`~repro.service.engine.SpannerService` over a sharded executor,
then *verifies* the result via the shared differential oracle
(:meth:`SpannerService.self_check`, i.e.
:func:`repro.oracle.verify_service`): every per-shard coalesced batch the
service applied is replayed synchronously through a freshly built backend
(same spec, same seed) and cross-checked against the service snapshot,
the live workers, the queue's membership view, and the structure-level
invariants.  Used by ``python -m repro.cli serve`` and by
``benchmarks/bench_srv_service_throughput.py``.

Arrival timing is simulated (a :class:`SimClock` advanced a fixed tick per
request, with periodic zero-gap bursts), so flush-deadline behaviour and
backpressure shedding are reproducible; flush *latency* metrics still
measure real wall time inside the engine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.resilience.manager import (
    RecoveryManager,
    ResilienceConfig,
    SupervisionConfig,
    bootstrap_executor,
)
from repro.service.admission import AdmissionConfig
from repro.service.batcher import BatcherConfig
from repro.service.engine import ServiceConfig, SpannerService
from repro.service.shard import ShardedExecutor
from repro.workloads.streams import request_stream

__all__ = ["ServeConfig", "ServeReport", "SimClock", "run_serve"]


class SimClock:
    """Deterministic monotonic clock the driver advances per request."""

    def __init__(self, t0: float = 0.0) -> None:
        self.t = t0

    def now(self) -> float:
        """Current simulated time (pass as the service clock)."""
        return self.t

    def advance(self, dt: float) -> None:
        """Move simulated time forward by ``dt`` seconds."""
        self.t += dt


@dataclass
class ServeConfig:
    # workload
    n: int = 256
    m: int = 1024
    requests: int = 10_000
    seed: int = 0
    query_prob: float = 0.1
    churn_prob: float = 0.15
    # backend
    backend: str = "spanner"
    k: int = 2
    base_capacity: int | None = None
    shards: int = 2
    processes: bool = False
    # serving knobs
    max_batch: int = 256
    max_delay: float = 0.002       # flush deadline (simulated seconds)
    target_batch_work: int | None = None
    queue_capacity: int = 192      # < arrivals per burst → backpressure
    request_timeout: float | None = None
    # fault tolerance (PR 4): a WAL directory makes the run durable — the
    # engine logs every committed batch, checkpoints on schedule, and a
    # rerun with the same directory resumes from the recovered state
    wal_dir: str | None = None
    checkpoint_interval: int = 64
    supervise: bool = True         # restart dead/hung shard workers
    recv_deadline: float = 5.0     # seconds before a worker counts as hung
    # simulated arrivals: one request per `tick`, with a zero-gap burst of
    # `burst_size` requests closing every `burst_every` requests
    tick: float = 2e-5
    burst_every: int = 1000
    burst_size: int = 300
    # real parallelism: with parallel >= 2 the engine owns a
    # ProcessPoolBackend with that many workers, batched reads expand
    # their BFS/flood rounds across it, and the demo driver parks reads
    # via submit_query so they drain through query_batch (the pool path)
    # instead of the singleton query API.  Answers and recorded charges
    # are identical either way.
    parallel: int = 0
    # snapshot adjacency substrate for the read path: "array" (CSR /
    # numpy frontier kernels) or "dict" (legacy dict-of-sets).  Answers
    # and recorded charges are identical on both.
    substrate: str = "array"


@dataclass
class ServeReport:
    config: ServeConfig
    served: int = 0
    applied_ops: int = 0
    shed: int = 0
    rejected: int = 0
    coalesced: int = 0
    queries: int = 0
    flushes: int = 0
    wall_seconds: float = 0.0
    interrupted: bool = False      # stopped early by SIGINT/SIGTERM
    resumed_from_seq: int = 0      # >0 when a WAL dir restored prior state
    final_seq: int = 0             # last committed sequence number
    recoveries: int = 0            # shard recoveries during the run
    checkpoints: int = 0
    verified: bool = False
    verification: Any = None  # ServiceVerification from the oracle
    shard_sizes: list[int] = field(default_factory=list)
    metrics: dict[str, Any] = field(default_factory=dict)
    metrics_text: str = ""

    @property
    def throughput_rps(self) -> float:
        return self.served / self.wall_seconds if self.wall_seconds else 0.0


def run_serve(cfg: ServeConfig, verify: bool = True) -> ServeReport:
    """Run the full demo; returns the report (never prints)."""
    report = ServeReport(config=cfg)
    executor = recovery = None
    parallel_backend = None
    try:
        initial_edges, requests = request_stream(
            cfg.n, cfg.m, cfg.requests, seed=cfg.seed,
            query_prob=cfg.query_prob, churn_prob=cfg.churn_prob,
        )
        if cfg.parallel and cfg.parallel >= 2:
            # fork the pool before the executor/recovery machinery spins
            # up any threads of its own
            from repro.parallel import ProcessPoolBackend

            parallel_backend = ProcessPoolBackend(
                cfg.parallel, min_items=32
            )
        spec: dict[str, Any] = {
            "kind": cfg.backend, "n": cfg.n, "edges": initial_edges,
            "seed": cfg.seed + 1000,
        }
        if cfg.backend in ("spanner", "sparse"):
            spec["k"] = cfg.k
            # small enough to engage the Bentley-Saxe decremental levels at
            # demo scale (the library default would hold everything in
            # level 0)
            spec["base_capacity"] = (
                cfg.base_capacity
                if cfg.base_capacity is not None
                else max(16, cfg.m // max(1, 4 * cfg.shards))
            )
        supervision = (
            SupervisionConfig(recv_deadline=cfg.recv_deadline)
            if cfg.supervise else None
        )
        resumed_from_seq = 0
        if cfg.wal_dir:
            recovery = RecoveryManager(ResilienceConfig(
                directory=cfg.wal_dir,
                checkpoint_interval=cfg.checkpoint_interval,
            ))
            resumed_from_seq = recovery.last_seq
            executor, _ = bootstrap_executor(
                spec, cfg.shards, recovery,
                processes=cfg.processes, supervision=supervision,
            )
        else:
            executor = ShardedExecutor(
                spec, cfg.shards, processes=cfg.processes,
                supervision=supervision,
            )
        clock = SimClock()
        service = SpannerService(
            executor,
            config=ServiceConfig(
                batcher=BatcherConfig(
                    max_batch=cfg.max_batch,
                    max_delay=cfg.max_delay,
                    target_batch_work=cfg.target_batch_work,
                ),
                admission=AdmissionConfig(
                    max_pending=cfg.queue_capacity,
                    request_timeout=cfg.request_timeout,
                ),
                substrate=cfg.substrate,
            ),
            clock=clock.now,
            recovery=recovery,
            parallel=parallel_backend,
        )
    except KeyboardInterrupt:
        # interrupt before serving even started (workload generation or
        # executor bootstrap): release whatever got built and report a
        # clean zero-request shutdown instead of dying on the signal
        report.interrupted = True
        if executor is not None:
            executor.close()
        if parallel_backend is not None:
            parallel_backend.close()
        if recovery is not None:
            recovery.close()
        return report
    report.resumed_from_seq = resumed_from_seq
    quiet_len = max(0, cfg.burst_every - cfg.burst_size)
    t0 = time.perf_counter()
    with service:
        try:
            for i, (op, payload) in enumerate(requests):
                in_burst = (
                    cfg.burst_every > 0 and i % cfg.burst_every >= quiet_len
                )
                if not in_burst:
                    clock.advance(cfg.tick)
                service.pump()
                if op == "query":
                    u, v = payload
                    if parallel_backend is not None:
                        # park the read; it drains through query_batch
                        # (the pool-backed path) at the next flush cycle
                        service.submit_query("distance", (u, v))
                    else:
                        service.query("distance", (u, v))
                    report.queries += 1
                else:
                    resp = service.submit_update(op, *payload)
                    if resp.outcome in ("shed", "shed_degraded"):
                        report.shed += 1
                    elif not resp.accepted:
                        report.rejected += 1
                report.served += 1
        except KeyboardInterrupt:
            # graceful shutdown: drain what was admitted, then fall
            # through to the final flush + checkpoint in service.close()
            report.interrupted = True
        service.flush()
        report.wall_seconds = time.perf_counter() - t0

        m = service.metrics.snapshot()
        report.metrics = m
        report.metrics_text = service.metrics.render()
        report.applied_ops = m.get("ops_applied", 0)
        report.coalesced = m.get("ops_coalesced_away", 0)
        report.flushes = m.get("flushes", 0)
        report.recoveries = m.get("recoveries", 0)
        report.checkpoints = m.get("checkpoints", 0)
        report.final_seq = resumed_from_seq + report.flushes
        report.shard_sizes = executor.scatter_sizes()

        if verify:
            verification = service.self_check(deep=True)
            report.verified = verification.ok
            report.verification = verification
    return report

"""Lightweight counters/histograms registry for the serving engine.

No external metrics stack: a :class:`Counter` is an integer, a
:class:`Histogram` keeps a bounded reservoir of observations plus exact
count/sum/min/max, and a :class:`MetricsRegistry` names them and renders a
summary table.  The engine exports queue depth, batch size, coalesce
ratio, flush latency, shed count, and per-batch work/depth through one
registry (see :meth:`repro.service.engine.SpannerService.metrics`).
"""

from __future__ import annotations

from typing import Any

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (>= 0) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up")
        self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A metric that can go up and down (e.g. current queue depth)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        """Record the gauge's current value."""
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Distribution metric with exact count/sum/min/max and sampled
    percentiles.

    Keeps at most ``reservoir`` observations; once full, every k-th
    observation replaces a rotating slot (deterministic decimation, so
    summaries reproduce run-to-run for seeded workloads).

    Decimation scheme: the reservoir holds every ``k``-th observation
    (``k = self._stride``, initially 1).  When it fills, every other
    retained sample is dropped and ``k`` doubles, so the kept samples
    always form a uniform systematic sample of the *whole* stream — an
    earlier revision instead overwrote a rotating slot on every
    observation once full, which silently degraded the reservoir to a
    sliding window of the most recent observations and recency-biased
    p50/p99 on drifting streams.
    """

    __slots__ = ("name", "_samples", "_reservoir", "_count", "_sum",
                 "_min", "_max", "_stride")

    def __init__(self, name: str, reservoir: int = 4096) -> None:
        if reservoir < 2:
            raise ValueError("reservoir must be >= 2")
        self.name = name
        self._reservoir = reservoir
        self._samples: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._stride = 1

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        # keep observation indices 0, k, 2k, ... (k = current stride)
        if (self._count - 1) % self._stride:
            return
        if len(self._samples) == self._reservoir:
            self._samples = self._samples[::2]
            self._stride *= 2
            if (self._count - 1) % self._stride:
                return
        self._samples.append(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        """Exact sum of every observation (Prometheus ``_sum``)."""
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def percentile(self, p: float) -> float:
        """Sampled p-th percentile (0 <= p <= 100); 0.0 when empty."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        idx = min(len(ordered) - 1, int(round(p / 100.0 * (len(ordered) - 1))))
        return ordered[idx]

    def summary(self) -> dict[str, float]:
        """count/mean/p50/p99/min/max of the distribution."""
        if not self._count:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p99": 0.0,
                    "min": 0.0, "max": 0.0}
        return {
            "count": self._count,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "min": self._min,
            "max": self._max,
        }


class MetricsRegistry:
    """Named counters/gauges/histograms with a printable summary."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str, reservoir: int = 4096) -> Histogram:
        """Get or create the histogram called ``name``."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, reservoir=reservoir)
        return self._histograms[name]

    def snapshot(self) -> dict[str, Any]:
        """All metric values as one flat dict (tests, JSON export)."""
        out: dict[str, Any] = {}
        for name, c in sorted(self._counters.items()):
            out[name] = c.value
        for name, g in sorted(self._gauges.items()):
            out[name] = g.value
        for name, h in sorted(self._histograms.items()):
            for key, val in h.summary().items():
                out[f"{name}.{key}"] = val
        return out

    def render_prometheus(
        self,
        namespace: str = "repro",
        labels: dict[str, str] | None = None,
    ) -> str:
        """Prometheus text exposition (version 0.0.4) of every metric.

        Counters and gauges become single samples; a :class:`Histogram`
        becomes a ``summary`` family — sampled ``quantile`` series plus the
        exact ``_count``/``_sum`` every Prometheus summary carries.
        ``labels`` (e.g. ``{"tenant": "acme"}``) are attached to every
        sample, which is how the net server exposes one scrape covering
        the primary and each tenant/replica registry.  Deterministic:
        metrics are emitted in sorted name order.
        """
        def name_of(raw: str) -> str:
            clean = "".join(
                ch if ch.isalnum() or ch == "_" else "_" for ch in raw
            )
            return f"{namespace}_{clean}" if namespace else clean

        def label_str(extra: dict[str, str] | None = None) -> str:
            merged = dict(labels or {})
            if extra:
                merged.update(extra)
            if not merged:
                return ""
            inner = ",".join(
                f'{k}="{v}"' for k, v in sorted(merged.items())
            )
            return "{" + inner + "}"

        def fmt(value: float) -> str:
            if value == float("inf"):
                return "+Inf"
            if value == float("-inf"):
                return "-Inf"
            if float(value).is_integer():
                return str(int(value))
            return repr(float(value))

        lines: list[str] = []
        for raw, c in sorted(self._counters.items()):
            name = name_of(raw)
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name}{label_str()} {fmt(c.value)}")
        for raw, g in sorted(self._gauges.items()):
            name = name_of(raw)
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name}{label_str()} {fmt(g.value)}")
        for raw, h in sorted(self._histograms.items()):
            name = name_of(raw)
            lines.append(f"# TYPE {name} summary")
            for q in (0.5, 0.99):
                lines.append(
                    f"{name}{label_str({'quantile': repr(q)})} "
                    f"{fmt(h.percentile(100 * q))}"
                )
            lines.append(f"{name}_count{label_str()} {fmt(h.count)}")
            lines.append(f"{name}_sum{label_str()} {fmt(h.sum)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render(self) -> str:
        """Human-readable metrics summary (the CLI's closing table)."""
        from repro.harness import format_table

        lines: list[str] = []
        scalar_rows = [
            {"metric": name, "value": c.value}
            for name, c in sorted(self._counters.items())
        ] + [
            {"metric": name, "value": round(g.value, 4)}
            for name, g in sorted(self._gauges.items())
        ]
        if scalar_rows:
            lines.append(format_table(scalar_rows, "service counters"))
        hist_rows = []
        for name, h in sorted(self._histograms.items()):
            row: dict[str, Any] = {"histogram": name}
            row.update(
                {k: round(v, 4) for k, v in h.summary().items()}
            )
            hist_rows.append(row)
        if hist_rows:
            lines.append(format_table(hist_rows, "service histograms"))
        return "\n\n".join(lines) if lines else "(no metrics)"

"""Adaptive micro-batching policy for the serving engine.

Decides *when* the ingestion queue flushes into the structure: on reaching
the current max batch size, or when the oldest pending op has waited past
the latency deadline.  The size limit adapts: the batcher tracks measured
cost-model work per op (EWMA over recent flushes) and, given a per-batch
work budget, grows batches while they are cheap and shrinks them when the
structure's per-op work rises (e.g. during Bentley–Saxe rebuild storms) —
keeping flush latency roughly level instead of batch size.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BatcherConfig", "AdaptiveBatcher"]


@dataclass
class BatcherConfig:
    """Tuning knobs (see docs/service.md for guidance)."""

    max_batch: int = 256          # starting / default flush size
    max_delay: float = 0.005      # seconds the oldest op may wait
    target_batch_work: int | None = None  # adapt max_batch toward this
    min_batch: int = 16           # adaptive floor
    max_batch_cap: int = 8192     # adaptive ceiling
    ewma_alpha: float = 0.3       # smoothing for work-per-op estimate


class AdaptiveBatcher:
    """Flush policy: size- or deadline-triggered, with adaptive sizing."""

    def __init__(self, config: BatcherConfig | None = None) -> None:
        self.config = config or BatcherConfig()
        self._current_max = self.config.max_batch
        self._work_per_op: float | None = None

    @property
    def current_max_batch(self) -> int:
        return self._current_max

    @property
    def work_per_op(self) -> float | None:
        """EWMA of measured cost-model work per applied op (None until the
        first flush)."""
        return self._work_per_op

    def should_flush(
        self, depth: int, oldest_enqueued_at: float | None, now: float
    ) -> bool:
        """True when the pending queue must drain now."""
        if depth <= 0:
            return False
        if depth >= self._current_max:
            return True
        return (
            oldest_enqueued_at is not None
            and now - oldest_enqueued_at >= self.config.max_delay
        )

    def seconds_until_deadline(
        self, oldest_enqueued_at: float | None, now: float
    ) -> float:
        """Time until the latency deadline forces a flush (for sleepers)."""
        if oldest_enqueued_at is None:
            return self.config.max_delay
        return max(0.0, oldest_enqueued_at + self.config.max_delay - now)

    def record_flush(self, batch_size: int, work: int) -> None:
        """Feed back one flush's measured size/work; adapts the size limit."""
        if batch_size <= 0:
            return
        sample = work / batch_size
        if self._work_per_op is None:
            self._work_per_op = sample
        else:
            a = self.config.ewma_alpha
            self._work_per_op = a * sample + (1 - a) * self._work_per_op
        target = self.config.target_batch_work
        if target is not None and self._work_per_op > 0:
            ideal = int(target / self._work_per_op)
            self._current_max = max(
                self.config.min_batch,
                min(self.config.max_batch_cap, ideal),
            )

"""`SpannerService`: the serving facade tying queue → batcher → executor.

One uniform ``submit_update`` / ``query`` API over any of the paper's
structures (fully-dynamic spanner, sparse spanner, spectral sparsifier),
run either in-process (:class:`LocalExecutor`) or across sharded worker
processes (:class:`repro.service.shard.ShardedExecutor`).

Consistency model: updates are queued, coalesced, and applied in batches;
queries are answered from the engine's *snapshot* — the structure's output
edge set as of the last flush, kept current via the ``(δ_ins, δ_del)``
deltas every structure returns.  A query therefore never interleaves with
a half-applied batch (snapshot consistency); pass ``consistency="fresh"``
to force a flush first and read your own writes.

Reads batch too: :meth:`SpannerService.query_batch` answers many reads
from one snapshot via shared traversals (:mod:`repro.queries.batch`), and
:meth:`SpannerService.submit_query` enqueues a read to be coalesced with
every other read pending at the next flush cycle — the read-side analogue
of the update queue.  See ``docs/queries.md``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.graph.array_graph import SUBSTRATES, ArrayDynamicGraph
from repro.graph.dynamic_graph import Edge
from repro.graph.traversal import bfs_distances
from repro.pram.cost import NULL_COST_MODEL, CostModel
from repro.queries.batch import QueryBatch, answer_queries
from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.batcher import AdaptiveBatcher, BatcherConfig
from repro.service.metrics import MetricsRegistry
from repro.service.queue import CoalescingQueue, DrainResult
from repro.workloads.streams import UpdateBatch

__all__ = [
    "ApplyResult",
    "LocalExecutor",
    "PendingQuery",
    "QueryResult",
    "ServiceConfig",
    "SpannerService",
    "SubmitResponse",
    "build_backend",
]


# -- backends ----------------------------------------------------------------


class _SpannerAdapter:
    """Uniform ``update``/``output_edges`` view over a spanner facade."""

    def __init__(self, inner) -> None:
        self.inner = inner

    def update(self, insertions=(), deletions=()):
        return self.inner.update(insertions=insertions, deletions=deletions)

    def output_edges(self) -> set[Edge]:
        return self.inner.spanner_edges()


class _SparsifierAdapter:
    def __init__(self, inner) -> None:
        self.inner = inner

    def update(self, insertions=(), deletions=()):
        return self.inner.update(insertions=insertions, deletions=deletions)

    def output_edges(self) -> set[Edge]:
        return self.inner.output_edges()


def build_backend(spec: dict[str, Any], cost: CostModel):
    """Construct a structure from a picklable spec dict.

    ``spec`` keys: ``kind`` ("spanner" | "sparse" | "sparsifier"), ``n``,
    ``edges`` (initial edge list), ``seed``, plus per-kind parameters
    (``k``, ``base_capacity``, ``t``).  Kept picklable so sharded workers
    can rebuild the backend in a spawned process, and so the serve demo
    can re-run the identical construction for verification.
    """
    kind = spec.get("kind", "spanner")
    n = spec["n"]
    edges = [tuple(e) for e in spec.get("edges", ())]
    seed = spec.get("seed", 0)
    if kind == "spanner":
        from repro.spanner import FullyDynamicSpanner

        return _SpannerAdapter(FullyDynamicSpanner(
            n, edges, k=spec.get("k", 2), seed=seed,
            base_capacity=spec.get("base_capacity"), cost=cost,
        ))
    if kind == "sparse":
        from repro.contraction import SparseSpannerDynamic

        return _SpannerAdapter(SparseSpannerDynamic(
            n, edges, seed=seed,
            base_capacity=spec.get("base_capacity"), cost=cost,
        ))
    if kind == "sparsifier":
        from repro.sparsifier import FullyDynamicSpectralSparsifier

        return _SparsifierAdapter(FullyDynamicSpectralSparsifier(
            n, edges, t=spec.get("t", 2), seed=seed, cost=cost,
        ))
    raise ValueError(f"unknown backend kind {kind!r}")


# -- executors ---------------------------------------------------------------


@dataclass
class ApplyResult:
    """Outcome of applying one coalesced batch to the structure(s).

    ``work`` sums over shards; ``depth`` and ``critical_work`` take the
    max (shards run in parallel, so the slowest shard is the critical
    path — ``work / critical_work`` is the batch's parallel speedup).

    The recovery fields are populated by supervised executors: which
    shards were restarted while applying this batch, which quarantined
    their sub-batch as poison, how many restarts happened, and how much
    wall time recovery consumed.
    """

    delta_ins: set[Edge]
    delta_del: set[Edge]
    work: int
    depth: int
    critical_work: int = 0
    recovered_shards: tuple[int, ...] = ()
    quarantined_shards: tuple[int, ...] = ()
    restarts: int = 0
    recovery_seconds: float = 0.0

    @property
    def recovered(self) -> bool:
        return bool(self.recovered_shards or self.quarantined_shards)


class LocalExecutor:
    """Single in-process structure (the unsharded fast path)."""

    def __init__(self, spec: dict[str, Any]) -> None:
        self.spec = dict(spec)
        self._cost = CostModel()
        self._backend = build_backend(self.spec, self._cost)
        self.applied_batches: list[UpdateBatch] = []
        self._graph: set[Edge] = self.initial_edges()

    def initial_edges(self) -> set[Edge]:
        """Edge set the backend was constructed with."""
        return {tuple(e) for e in self.spec.get("edges", ())}

    def output_edges(self) -> set[Edge]:
        """The structure's current output (spanner/sparsifier) edges."""
        return self._backend.output_edges()

    def shard_graphs(self) -> list[set[Edge]]:
        """Uniform with :meth:`ShardedExecutor.shard_graphs` (one shard)."""
        return [set(self._graph)]

    def graph_union(self) -> set[Edge]:
        """The graph edge set implied by every applied batch."""
        return set(self._graph)

    def apply(self, batch: UpdateBatch, seq: int | None = None) -> ApplyResult:
        """Apply one coalesced batch; returns deltas plus measured cost."""
        with self._cost.frame() as fr:
            ins, dels = self._backend.update(
                insertions=batch.insertions, deletions=batch.deletions
            )
        self.applied_batches.append(batch)
        self._graph -= set(batch.deletions)
        self._graph |= set(batch.insertions)
        return ApplyResult(set(ins), set(dels), fr.work, fr.depth,
                           critical_work=fr.work)

    def gather_edges(self) -> set[Edge]:
        """Uniform with :meth:`ShardedExecutor.gather_edges`."""
        return self.output_edges()

    def close(self) -> None:
        """No-op (uniform with :meth:`ShardedExecutor.close`)."""


# -- the service -------------------------------------------------------------


@dataclass
class SubmitResponse:
    """What a client gets back from :meth:`SpannerService.submit_update`."""

    accepted: bool
    outcome: str                    # queue outcome, "shed", or "shed_degraded"
    retry_after: float | None = None


@dataclass
class QueryResult:
    """A query answer plus its consistency provenance.

    ``stale`` is True when the answer was served from the last consistent
    snapshot while a shard was being recovered (graceful degradation);
    ``as_of_seq`` is the commit sequence number the snapshot reflects.
    """

    value: Any
    stale: bool = False
    as_of_seq: int = 0


class PendingQuery:
    """A read enqueued via :meth:`SpannerService.submit_query`.

    Resolved at the next flush cycle, when the engine answers every
    pending read from one shared traversal pass over the
    freshly-flushed snapshot.  Call :meth:`result` to block until then
    (or :meth:`SpannerService.flush` to force the cycle).
    """

    __slots__ = ("kind", "payload", "enqueued_at", "_event", "_result")

    def __init__(self, kind: str, payload: Any, enqueued_at: float) -> None:
        self.kind = kind
        self.payload = payload
        self.enqueued_at = enqueued_at
        self._event = threading.Event()
        self._result: QueryResult | None = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> QueryResult:
        """Block until the read is answered; raises TimeoutError if not."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"pending {self.kind!r} query not resolved in {timeout}s"
            )
        assert self._result is not None
        return self._result

    def _resolve(self, result: QueryResult) -> None:
        self._result = result
        self._event.set()


@dataclass
class ServiceConfig:
    batcher: BatcherConfig = field(default_factory=BatcherConfig)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: snapshot adjacency container for the read path: "array" keeps an
    #: :class:`~repro.graph.array_graph.ArrayDynamicGraph` (CSR kernels),
    #: "dict" the legacy dict-of-sets.  Answers and recorded charges are
    #: identical on both (see docs/substrate.md).
    substrate: str = "array"


def _executor_n(executor) -> int | None:
    """Vertex count from the executor's build spec, if it carries one."""
    spec = getattr(executor, "spec", None)
    if spec is None:
        specs = getattr(executor, "shard_specs", None)
        spec = specs[0] if specs else None
    try:
        return int(spec["n"])
    except (TypeError, KeyError, ValueError):
        return None


class SpannerService:
    """Asynchronous batch-dynamic serving engine (see module docstring).

    Thread-safe: all public methods serialize on one lock, so a background
    flusher thread (:meth:`start`) can share the engine with client
    threads.  Determinism note: with a fixed request sequence the *applied
    batches* depend on flush timing, but replaying the logged batches
    always reproduces the structure exactly — that is what the serve
    demo's verification checks.
    """

    def __init__(
        self,
        executor,
        config: ServiceConfig | None = None,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
        recovery=None,
        parallel=None,
    ) -> None:
        self.executor = executor
        # Optional execution backend (repro.parallel.ExecutionBackend) for
        # the batched read path: query_batch traversals expand frontier
        # rounds across its workers.  The engine owns it: close() closes
        # it.  Answers are identical with or without it; recorded charges
        # are too (see repro.queries.batch.multi_source_bfs).
        self.parallel_backend = parallel
        self.config = config or ServiceConfig()
        self.metrics = metrics or MetricsRegistry()
        # hot-path metric handles, resolved once instead of a registry
        # dict lookup per request
        m = self.metrics
        self._m_requests_update = m.counter("requests_update")
        self._m_requests_query = m.counter("requests_query")
        self._m_shed = m.counter("shed")
        self._m_shed_degraded = m.counter("shed_degraded")
        self._m_stale_reads = m.counter("stale_reads")
        self._m_query_batches = m.counter("query_batches")
        self._m_queries_deduped = m.counter("queries_deduped")
        self._m_reads_coalesced = m.counter("reads_coalesced")
        self._m_query_batch_size = m.histogram("query_batch_size")
        if parallel is not None:
            parallel.bind_metrics(m)
        self._m_offer: dict[str, Any] = {}
        self._m_queue_depth = m.gauge("queue_depth")
        self._clock = clock
        self._lock = threading.RLock()
        self.queue = CoalescingQueue(executor.initial_edges(), clock=clock)
        self.batcher = AdaptiveBatcher(self.config.batcher)
        self.admission = AdmissionController(self.config.admission)
        # durable WAL+checkpoint lifecycle (None = in-memory only)
        self.recovery = recovery
        self._next_seq = (recovery.last_seq + 1) if recovery else 1
        # fired with (seq, batch) after each commit (chaos ground truth)
        self.commit_hooks: list[Callable[[int, UpdateBatch], None]] = []
        # set by a supervised executor while a shard is being restarted;
        # checked lock-free so clients degrade instead of queueing behind
        # the recovering flush
        self._degraded: threading.Event = getattr(
            executor, "degraded", None
        ) or threading.Event()
        # snapshot = structure output as of the last flush; guarded by its
        # own lock so queries stay served while a flush recovers a shard
        self._snap_lock = threading.Lock()
        self._snapshot: set[Edge] = set(executor.output_edges())
        self._snapshot_seq = self._next_seq - 1
        if self.config.substrate not in SUBSTRATES:
            raise ValueError(
                f"unknown substrate {self.config.substrate!r}; "
                f"expected one of {SUBSTRATES}"
            )
        self._substrate = self.config.substrate
        # vertex count for the array adjacency and for substrate-invariant
        # BFS charges (dict adjacency len counts only non-isolated
        # vertices); falls back to the snapshot's max endpoint when the
        # executor's spec does not carry n
        self._n = _executor_n(executor)
        self._adj = None  # lazy BFS adjacency (substrate-dependent)
        # reads waiting to be answered at the next flush cycle
        self._pending_reads: list[PendingQuery] = []
        # stats from the most recent batched answer pass (inspection)
        self.last_query_stats = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._closed = False

    # -- client API ----------------------------------------------------------

    def submit_update(
        self, op: str, u: int, v: int, now: float | None = None
    ) -> SubmitResponse:
        """Submit one edge insert/delete; may trigger an inline flush."""
        if self._degraded.is_set():
            # a shard is mid-recovery: shed immediately (without queueing
            # behind the recovering flush) with a retry hint sized to the
            # flush deadline, per the admission controller's policy
            self._m_requests_update.inc()
            self._m_shed_degraded.inc()
            decision = self.admission.admit(
                self.queue.depth, self.config.batcher.max_delay,
                degraded=True,
            )
            return SubmitResponse(False, "shed_degraded",
                                  decision.retry_after)
        with self._lock:
            if now is None:
                now = self._clock()
            self._m_requests_update.inc()
            decision = self.admission.admit(
                self.queue.depth, self.config.batcher.max_delay
            )
            if not decision.admitted:
                self._m_shed.inc()
                return SubmitResponse(False, "shed", decision.retry_after)
            outcome = self.queue.offer(
                op, (u, v), now=now,
                timeout=self.config.admission.request_timeout,
            )
            ctr = self._m_offer.get(outcome)
            if ctr is None:
                ctr = self._m_offer[outcome] = self.metrics.counter(
                    f"offer_{outcome}"
                )
            ctr.inc()
            self._m_queue_depth.set(self.queue.depth)
            accepted = outcome in (
                "accepted", "coalesced_dedup", "coalesced_cancel"
            )
            if accepted and self.batcher.should_flush(
                self.queue.depth, self.queue.oldest_enqueued_at(), now
            ):
                self._flush_locked(now)
            return SubmitResponse(accepted, outcome)

    def query(
        self,
        kind: str,
        payload: Any = None,
        consistency: str = "snapshot",
    ) -> Any:
        """Answer a read against the maintained output.

        Kinds: ``"size"``, ``"edges"``, ``"contains"`` (payload = edge),
        ``"distance"`` / ``"connected"`` (payload = ``(u, v)``, BFS over
        the snapshot).  ``consistency="fresh"`` flushes pending updates
        first (read-your-writes); the default answers from the last
        flushed snapshot.  Use :meth:`query_info` to also learn whether
        the answer was served stale during a shard recovery.
        """
        return self.query_info(kind, payload, consistency).value

    def query_info(
        self,
        kind: str,
        payload: Any = None,
        consistency: str = "snapshot",
    ) -> QueryResult:
        """Like :meth:`query`, but returns a :class:`QueryResult` carrying
        the staleness tag and the commit seq the snapshot reflects.

        Snapshot reads take only the snapshot lock, so while a flush is
        blocked recovering a crashed shard, queries keep answering from
        the last consistent snapshot (tagged ``stale=True``) instead of
        queueing behind the recovery.
        """
        if consistency == "fresh":
            with self._lock:
                self.flush()
        elif consistency != "snapshot":
            raise ValueError(f"unknown consistency {consistency!r}")
        self._m_requests_query.inc()
        with self._snap_lock:
            # sampled *inside* the snapshot lock, atomically with the
            # snapshot itself: sampling before taking the lock let a
            # recovery resync slip between the two reads, tagging a
            # post-recovery (fresh) snapshot as stale or — worse — a
            # mid-recovery one as fresh
            stale = self._degraded.is_set()
            if stale:
                self._m_stale_reads.inc()
            snap = self._snapshot
            as_of = self._snapshot_seq
            if kind == "size":
                return QueryResult(len(snap), stale, as_of)
            if kind == "edges":
                return QueryResult(set(snap), stale, as_of)
            if kind == "contains":
                u, v = payload
                e = (u, v) if u < v else (v, u)
                return QueryResult(e in snap, stale, as_of)
            if kind in ("distance", "connected"):
                u, v = payload
                adj = self._adjacency()
                if u == v:
                    d = 0
                else:
                    # an isolated/unknown source yields {u: 0}, so the
                    # .get(v) is None — no membership probe needed (and
                    # ``in`` on the array substrate means edge membership)
                    d = bfs_distances(adj, u, target=v).get(v)
                if kind == "connected":
                    return QueryResult(d is not None, stale, as_of)
                return QueryResult(
                    float("inf") if d is None else float(d), stale, as_of
                )
            raise ValueError(f"unknown query kind {kind!r}")

    def query_batch(
        self,
        items,
        consistency: str = "snapshot",
        cost: CostModel | None = None,
    ) -> list[QueryResult]:
        """Answer many reads from one snapshot via shared traversals.

        ``items`` is a :class:`~repro.queries.batch.QueryBatch` or a list
        of ``(kind, payload)`` pairs (same kinds as :meth:`query`).
        Identical queries are deduplicated, all ``distance`` queries share
        one multi-source BFS sweep, and all ``connected`` queries share
        one component labeling — see :func:`repro.queries.answer_queries`.
        Answers are positionally aligned with ``items`` and exactly equal
        what :meth:`query` would return one at a time on the same
        snapshot.  The whole batch carries one staleness tag and one
        ``as_of_seq``, sampled atomically with the snapshot.
        """
        if isinstance(items, QueryBatch):
            items = items.items
        else:
            items = list(items)
        if consistency == "fresh":
            with self._lock:
                self.flush()
        elif consistency != "snapshot":
            raise ValueError(f"unknown consistency {consistency!r}")
        self._m_requests_query.inc(len(items))
        self._m_query_batches.inc()
        self._m_query_batch_size.observe(len(items))
        with self._snap_lock:
            stale = self._degraded.is_set()
            if stale:
                self._m_stale_reads.inc(len(items))
            as_of = self._snapshot_seq
            answers, stats = answer_queries(
                items,
                edge_set=self._snapshot,
                adjacency=self._adjacency(),
                n=self._query_n(),
                cost=cost or NULL_COST_MODEL,
                backend=self.parallel_backend,
                adj_version=self._snapshot_seq,
            )
        self._m_queries_deduped.inc(stats.queries - stats.unique)
        self.last_query_stats = stats
        return [QueryResult(a, stale, as_of) for a in answers]

    def submit_query(
        self, kind: str, payload: Any = None, now: float | None = None
    ) -> PendingQuery:
        """Enqueue a read to be answered at the next flush cycle.

        The read-side analogue of :meth:`submit_update`: the engine holds
        the read until the batcher's next flush, then answers *every*
        pending read from one shared traversal pass over the
        freshly-flushed snapshot (reads coalesce exactly like updates
        do).  Returns a :class:`PendingQuery`; call ``.result(timeout)``
        to block for the answer, or :meth:`flush` to force the cycle.
        Enqueued reads count toward the batcher's flush trigger, so a
        read-heavy workload still flushes promptly.
        """
        with self._lock:
            if now is None:
                now = self._clock()
            pending = PendingQuery(kind, payload, now)
            self._pending_reads.append(pending)
            if self.batcher.should_flush(
                self.queue.depth + len(self._pending_reads),
                self._oldest_waiting(),
                now,
            ):
                self._flush_locked(now)
            return pending

    def _oldest_waiting(self) -> float | None:
        """Oldest enqueue time across pending updates *and* reads."""
        oldest = self.queue.oldest_enqueued_at()
        if self._pending_reads:
            oldest_read = self._pending_reads[0].enqueued_at
            if oldest is None or oldest_read < oldest:
                oldest = oldest_read
        return oldest

    # -- replication ---------------------------------------------------------

    @property
    def committed_seq(self) -> int:
        """Sequence number of the last committed (applied) batch."""
        return self._next_seq - 1

    def set_degraded(self, flag: bool) -> None:
        """Raise or clear the degraded marker by hand.

        The sharded executor sets it while a worker is mid-recovery; a
        log-shipping replica sets it while it knows it is behind the
        primary, so reads surface ``stale=True`` through
        :meth:`query_info` by the exact same path recovery does.
        """
        if flag:
            self._degraded.set()
        else:
            self._degraded.clear()

    def align_seq(self, seq: int) -> None:
        """Start committing at ``seq + 1`` (replica bootstrap).

        A replica that bootstraps from a primary's checkpointed base state
        must number its replicated commits exactly as the primary does, or
        :meth:`apply_replicated` would refuse the shipped stream.  Only
        legal before anything was committed locally.
        """
        with self._lock:
            if self.metrics.counter("flushes").value or \
                    self.metrics.counter("replicated_batches").value:
                raise RuntimeError("align_seq after commits were applied")
            self._next_seq = seq + 1
            self._snapshot_seq = seq

    def apply_replicated(self, seq: int, batch: UpdateBatch) -> ApplyResult:
        """Apply one batch shipped from a primary's commit log.

        The replica path: bypasses queue, admission, and batcher — the
        primary already validated, coalesced, and ordered the batch — and
        applies it verbatim at exactly the next sequence number, keeping
        replica state a pure function of ``base spec + shipped log``.
        Updates the snapshot by deltas, keeps the queue's membership view
        in lockstep (so :meth:`graph_edges` and the oracle's graph checks
        hold on replicas), and fires commit hooks; it does *not* WAL-log
        (replica state is derived, the primary owns durability).
        """
        with self._lock:
            if seq != self._next_seq:
                raise ValueError(
                    f"replicated seq {seq} is not the next expected "
                    f"{self._next_seq}; the shipped log has a gap"
                )
            t0 = time.perf_counter()
            result = self.executor.apply(batch, seq=seq)
            latency = time.perf_counter() - t0
            self._next_seq = seq + 1
            self.queue.sync_applied(batch)
            with self._snap_lock:
                self._snapshot -= result.delta_del
                self._snapshot |= result.delta_ins
                self._snapshot_seq = seq
                self._adj_apply_delta(result.delta_ins, result.delta_del)
            m = self.metrics
            m.counter("replicated_batches").inc()
            m.counter("ops_applied").inc(batch.size)
            m.histogram("batch_size").observe(batch.size)
            m.histogram("flush_latency_s").observe(latency)
            for hook in self.commit_hooks:
                hook(seq, batch)
            return result

    # -- flushing ------------------------------------------------------------

    def pump(self, now: float | None = None) -> bool:
        """Flush if the batcher says it is due; returns True if it flushed."""
        with self._lock:
            if now is None:
                now = self._clock()
            if self.batcher.should_flush(
                self.queue.depth + len(self._pending_reads),
                self._oldest_waiting(), now,
            ):
                self._flush_locked(now)
                return True
            return False

    def flush(self) -> DrainResult | None:
        """Unconditionally drain and apply whatever is pending.

        Pending reads (:meth:`submit_query`) resolve here too: the cycle
        applies queued updates first, then answers every waiting read
        from the new snapshot in one batched pass.
        """
        with self._lock:
            if self.queue.depth == 0 and not self._pending_reads:
                return None
            return self._flush_locked(self._clock())

    def _flush_locked(self, now: float) -> DrainResult:
        drained = self.queue.drain(now=now)
        m = self.metrics
        if drained.batch.size:
            seq = self._next_seq
            # latency is real wall time even when flush *decisions* run on
            # an injected (possibly simulated) clock
            t0 = time.perf_counter()
            result = self.executor.apply(drained.batch, seq=seq)
            latency = time.perf_counter() - t0
            self._next_seq = seq + 1
            self.batcher.record_flush(drained.batch.size, result.work)
            self._commit_durable(seq, drained.batch)
            for hook in self.commit_hooks:
                hook(seq, drained.batch)
            if result.recovered:
                # a shard was rebuilt mid-batch: its fresh structure may
                # output different edges, so the delta stream is void —
                # resynchronize the snapshot from the live workers
                self._record_recovery(result)
                resynced = self.executor.gather_edges()
                with self._snap_lock:
                    self._snapshot = set(resynced)
                    self._snapshot_seq = seq
                    self._adj = None
            else:
                with self._snap_lock:
                    self._snapshot -= result.delta_del
                    self._snapshot |= result.delta_ins
                    self._snapshot_seq = seq
                    self._adj_apply_delta(result.delta_ins, result.delta_del)
            m.counter("flushes").inc()
            m.counter("ops_applied").inc(drained.batch.size)
            m.histogram("batch_size").observe(drained.batch.size)
            m.histogram("flush_latency_s").observe(latency)
            m.histogram("batch_work").observe(result.work)
            m.histogram("batch_critical_work").observe(result.critical_work)
            m.histogram("batch_depth").observe(result.depth)
        m.counter("ops_coalesced_away").inc(drained.coalesced_away)
        m.counter("ops_expired").inc(drained.expired_ops)
        m.histogram("coalesce_ratio").observe(drained.coalesce_ratio)
        m.gauge("queue_depth").set(self.queue.depth)
        m.gauge("adaptive_max_batch").set(self.batcher.current_max_batch)
        if self._pending_reads:
            # answer every read that was waiting on this cycle from one
            # shared traversal pass over the just-updated snapshot
            pending, self._pending_reads = self._pending_reads, []
            self._m_reads_coalesced.inc(len(pending))
            results = self.query_batch(
                [(p.kind, p.payload) for p in pending]
            )
            for p, r in zip(pending, results):
                p._resolve(r)
        return drained

    # -- durability ----------------------------------------------------------

    def _commit_durable(self, seq: int, batch: UpdateBatch) -> None:
        """WAL-log one committed batch and checkpoint on schedule."""
        if self.recovery is None:
            return
        m = self.metrics
        m.counter("wal_records").inc()
        self.recovery.log_applied(seq, batch)
        m.gauge("wal_bytes").set(self.recovery.wal_bytes)
        if self.recovery.should_checkpoint():
            self.checkpoint()

    def checkpoint(self) -> bool:
        """Write a checkpoint of the current per-shard state now.

        Returns False (and keeps serving) if the write fails — losing a
        checkpoint only lengthens the next replay, it never loses data,
        so robustness wins over strictness here.
        """
        if self.recovery is None:
            return False
        m = self.metrics
        try:
            self.recovery.write_checkpoint(
                self._next_seq - 1, self.executor.shard_graphs()
            )
        except Exception:
            m.counter("checkpoint_failures").inc()
            return False
        m.counter("checkpoints").inc()
        m.gauge("wal_bytes").set(self.recovery.wal_bytes)
        return True

    def _record_recovery(self, result: ApplyResult) -> None:
        m = self.metrics
        m.counter("recoveries").inc(len(result.recovered_shards))
        m.counter("shard_restarts").inc(result.restarts)
        m.counter("quarantined_batches").inc(
            len(result.quarantined_shards)
        )
        if result.recovery_seconds:
            m.histogram("recovery_latency_s").observe(
                result.recovery_seconds
            )
        fallbacks = getattr(self.executor, "wal_fallbacks", 0)
        if fallbacks:
            wf = m.counter("wal_fallbacks")
            wf.inc(fallbacks - wf.value)

    # -- background flusher --------------------------------------------------

    def start(self) -> None:
        """Run a daemon thread that enforces the latency deadline and,
        for supervised sharded executors, heartbeats worker liveness."""
        if self._thread is not None:
            return
        self._stop.clear()
        supervision = getattr(self.executor, "supervision", None)
        can_probe = supervision is not None and hasattr(
            self.executor, "health_check"
        )
        last_probe = time.monotonic()

        def loop() -> None:
            nonlocal last_probe
            while not self._stop.is_set():
                with self._lock:
                    now = self._clock()
                    wait = self.batcher.seconds_until_deadline(
                        self._oldest_waiting(), now
                    )
                    if wait <= 0.0:
                        self._flush_locked(now)
                        wait = self.config.batcher.max_delay
                    if (can_probe and time.monotonic() - last_probe
                            >= supervision.heartbeat_interval):
                        last_probe = time.monotonic()
                        for h in self.executor.health_check(restart=True):
                            if h.restarted:
                                self.metrics.counter(
                                    "heartbeat_restarts"
                                ).inc()
                self._stop.wait(min(wait, self.config.batcher.max_delay))

        self._thread = threading.Thread(
            target=loop, name="repro-service-flusher", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the background flusher and apply any remaining updates.

        Idempotent and exception-safe: the flusher thread is always
        reaped, and a final flush that fails (e.g. the executor is
        already gone) is recorded in metrics instead of propagating out
        of shutdown.
        """
        thread, self._thread = self._thread, None
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5.0)
        try:
            self.flush()
        except Exception:
            self.metrics.counter("shutdown_flush_failures").inc()

    def close(self) -> None:
        """Stop the flusher, persist a final checkpoint, and shut the
        executor down.  Safe to call twice; never hangs on a dead shard."""
        if self._closed:
            return
        self._closed = True
        try:
            self.stop()
            if self.recovery is not None:
                self.checkpoint()
        finally:
            self.executor.close()
            if self.parallel_backend is not None:
                self.parallel_backend.close()
            if self.recovery is not None:
                self.recovery.close()

    def __enter__(self) -> "SpannerService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- inspection ----------------------------------------------------------

    def snapshot_edges(self) -> set[Edge]:
        """The output edge set as of the last flush."""
        with self._lock:
            return set(self._snapshot)

    def graph_edges(self) -> set[Edge]:
        """The *graph* edge set implied by every applied batch."""
        with self._lock:
            return self.queue.live_edges

    def self_check(self, deep: bool = False):
        """Cross-check the served state against the shared oracle
        (:func:`repro.oracle.verify_service`): flush pending updates, then
        replay every applied batch through a freshly built backend and
        compare output/graph views.  Returns a
        :class:`~repro.oracle.service.ServiceVerification`.
        """
        from repro.oracle.service import verify_service

        with self._lock:
            self.flush()
            return verify_service(self, self.executor, deep=deep)

    def _adjacency(self):
        """Lazy BFS adjacency over the snapshot (substrate-dependent)."""
        if self._adj is None:
            if self._substrate == "array":
                n = self._n
                if n is None:
                    n = 1 + max(
                        (max(e) for e in self._snapshot), default=-1
                    )
                self._adj = ArrayDynamicGraph(n, self._snapshot)
            else:
                adj: dict[int, set[int]] = {}
                for a, b in self._snapshot:
                    adj.setdefault(a, set()).add(b)
                    adj.setdefault(b, set()).add(a)
                self._adj = adj
        return self._adj

    def _adj_apply_delta(self, ins, dels) -> None:
        """Keep the lazy adjacency in lockstep with a snapshot delta.

        Caller holds ``_snap_lock``.  Both substrates apply the delta
        in place; the array path falls back to a rebuild-on-next-read if
        the delta steps outside the arena's vertex range (possible only
        when ``n`` had to be inferred from the snapshot).
        """
        if self._adj is None:
            return
        if self._substrate == "array":
            try:
                # both batch ops validate before mutating, so a failure
                # leaves the graph untouched and the rebuild is safe
                if dels:
                    self._adj.delete_batch(dels)
                if ins:
                    self._adj.insert_batch(ins)
            except (KeyError, ValueError):
                self._adj = None
        else:
            for a, b in dels:
                self._adj[a].discard(b)
                self._adj[b].discard(a)
            for a, b in ins:
                self._adj.setdefault(a, set()).add(b)
                self._adj.setdefault(b, set()).add(a)

    def _query_n(self) -> int | None:
        """Vertex count handed to the traversal charge model.

        Explicit ``n`` keeps charges substrate-invariant: a dict-of-sets
        adjacency has ``len`` = #non-isolated vertices while the array
        substrate's is the true ``n``.
        """
        if self._n is not None:
            return self._n
        if self._substrate == "array":
            return len(self._adjacency())
        return None

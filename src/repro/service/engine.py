"""`SpannerService`: the serving facade tying queue → batcher → executor.

One uniform ``submit_update`` / ``query`` API over any of the paper's
structures (fully-dynamic spanner, sparse spanner, spectral sparsifier),
run either in-process (:class:`LocalExecutor`) or across sharded worker
processes (:class:`repro.service.shard.ShardedExecutor`).

Consistency model: updates are queued, coalesced, and applied in batches;
queries are answered from the engine's *snapshot* — the structure's output
edge set as of the last flush, kept current via the ``(δ_ins, δ_del)``
deltas every structure returns.  A query therefore never interleaves with
a half-applied batch (snapshot consistency); pass ``consistency="fresh"``
to force a flush first and read your own writes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.graph.dynamic_graph import Edge
from repro.graph.traversal import bfs_distances
from repro.pram.cost import CostModel
from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.batcher import AdaptiveBatcher, BatcherConfig
from repro.service.metrics import MetricsRegistry
from repro.service.queue import CoalescingQueue, DrainResult
from repro.workloads.streams import UpdateBatch

__all__ = [
    "ApplyResult",
    "LocalExecutor",
    "ServiceConfig",
    "SpannerService",
    "SubmitResponse",
    "build_backend",
]


# -- backends ----------------------------------------------------------------


class _SpannerAdapter:
    """Uniform ``update``/``output_edges`` view over a spanner facade."""

    def __init__(self, inner) -> None:
        self.inner = inner

    def update(self, insertions=(), deletions=()):
        return self.inner.update(insertions=insertions, deletions=deletions)

    def output_edges(self) -> set[Edge]:
        return self.inner.spanner_edges()


class _SparsifierAdapter:
    def __init__(self, inner) -> None:
        self.inner = inner

    def update(self, insertions=(), deletions=()):
        return self.inner.update(insertions=insertions, deletions=deletions)

    def output_edges(self) -> set[Edge]:
        return self.inner.output_edges()


def build_backend(spec: dict[str, Any], cost: CostModel):
    """Construct a structure from a picklable spec dict.

    ``spec`` keys: ``kind`` ("spanner" | "sparse" | "sparsifier"), ``n``,
    ``edges`` (initial edge list), ``seed``, plus per-kind parameters
    (``k``, ``base_capacity``, ``t``).  Kept picklable so sharded workers
    can rebuild the backend in a spawned process, and so the serve demo
    can re-run the identical construction for verification.
    """
    kind = spec.get("kind", "spanner")
    n = spec["n"]
    edges = [tuple(e) for e in spec.get("edges", ())]
    seed = spec.get("seed", 0)
    if kind == "spanner":
        from repro.spanner import FullyDynamicSpanner

        return _SpannerAdapter(FullyDynamicSpanner(
            n, edges, k=spec.get("k", 2), seed=seed,
            base_capacity=spec.get("base_capacity"), cost=cost,
        ))
    if kind == "sparse":
        from repro.contraction import SparseSpannerDynamic

        return _SpannerAdapter(SparseSpannerDynamic(
            n, edges, seed=seed,
            base_capacity=spec.get("base_capacity"), cost=cost,
        ))
    if kind == "sparsifier":
        from repro.sparsifier import FullyDynamicSpectralSparsifier

        return _SparsifierAdapter(FullyDynamicSpectralSparsifier(
            n, edges, t=spec.get("t", 2), seed=seed, cost=cost,
        ))
    raise ValueError(f"unknown backend kind {kind!r}")


# -- executors ---------------------------------------------------------------


@dataclass
class ApplyResult:
    """Outcome of applying one coalesced batch to the structure(s).

    ``work`` sums over shards; ``depth`` and ``critical_work`` take the
    max (shards run in parallel, so the slowest shard is the critical
    path — ``work / critical_work`` is the batch's parallel speedup).
    """

    delta_ins: set[Edge]
    delta_del: set[Edge]
    work: int
    depth: int
    critical_work: int = 0


class LocalExecutor:
    """Single in-process structure (the unsharded fast path)."""

    def __init__(self, spec: dict[str, Any]) -> None:
        self.spec = dict(spec)
        self._cost = CostModel()
        self._backend = build_backend(self.spec, self._cost)
        self.applied_batches: list[UpdateBatch] = []

    def initial_edges(self) -> set[Edge]:
        """Edge set the backend was constructed with."""
        return {tuple(e) for e in self.spec.get("edges", ())}

    def output_edges(self) -> set[Edge]:
        """The structure's current output (spanner/sparsifier) edges."""
        return self._backend.output_edges()

    def apply(self, batch: UpdateBatch) -> ApplyResult:
        """Apply one coalesced batch; returns deltas plus measured cost."""
        with self._cost.frame() as fr:
            ins, dels = self._backend.update(
                insertions=batch.insertions, deletions=batch.deletions
            )
        self.applied_batches.append(batch)
        return ApplyResult(set(ins), set(dels), fr.work, fr.depth,
                           critical_work=fr.work)

    def gather_edges(self) -> set[Edge]:
        """Uniform with :meth:`ShardedExecutor.gather_edges`."""
        return self.output_edges()

    def close(self) -> None:
        """No-op (uniform with :meth:`ShardedExecutor.close`)."""


# -- the service -------------------------------------------------------------


@dataclass
class SubmitResponse:
    """What a client gets back from :meth:`SpannerService.submit_update`."""

    accepted: bool
    outcome: str                    # queue outcome or "shed"
    retry_after: float | None = None


@dataclass
class ServiceConfig:
    batcher: BatcherConfig = field(default_factory=BatcherConfig)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)


class SpannerService:
    """Asynchronous batch-dynamic serving engine (see module docstring).

    Thread-safe: all public methods serialize on one lock, so a background
    flusher thread (:meth:`start`) can share the engine with client
    threads.  Determinism note: with a fixed request sequence the *applied
    batches* depend on flush timing, but replaying the logged batches
    always reproduces the structure exactly — that is what the serve
    demo's verification checks.
    """

    def __init__(
        self,
        executor,
        config: ServiceConfig | None = None,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.executor = executor
        self.config = config or ServiceConfig()
        self.metrics = metrics or MetricsRegistry()
        self._clock = clock
        self._lock = threading.RLock()
        self.queue = CoalescingQueue(executor.initial_edges(), clock=clock)
        self.batcher = AdaptiveBatcher(self.config.batcher)
        self.admission = AdmissionController(self.config.admission)
        # snapshot = structure output as of the last flush
        self._snapshot: set[Edge] = set(executor.output_edges())
        self._adj: dict[int, set[int]] | None = None  # lazy BFS adjacency
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- client API ----------------------------------------------------------

    def submit_update(
        self, op: str, u: int, v: int, now: float | None = None
    ) -> SubmitResponse:
        """Submit one edge insert/delete; may trigger an inline flush."""
        with self._lock:
            if now is None:
                now = self._clock()
            m = self.metrics
            m.counter("requests_update").inc()
            decision = self.admission.admit(
                self.queue.depth, self.config.batcher.max_delay
            )
            if not decision.admitted:
                m.counter("shed").inc()
                return SubmitResponse(False, "shed", decision.retry_after)
            outcome = self.queue.offer(
                op, (u, v), now=now,
                timeout=self.config.admission.request_timeout,
            )
            m.counter(f"offer_{outcome}").inc()
            m.gauge("queue_depth").set(self.queue.depth)
            accepted = outcome in (
                "accepted", "coalesced_dedup", "coalesced_cancel"
            )
            if accepted and self.batcher.should_flush(
                self.queue.depth, self.queue.oldest_enqueued_at(), now
            ):
                self._flush_locked(now)
            return SubmitResponse(accepted, outcome)

    def query(
        self,
        kind: str,
        payload: Any = None,
        consistency: str = "snapshot",
    ) -> Any:
        """Answer a read against the maintained output.

        Kinds: ``"size"``, ``"edges"``, ``"contains"`` (payload = edge),
        ``"distance"`` / ``"connected"`` (payload = ``(u, v)``, BFS over
        the snapshot).  ``consistency="fresh"`` flushes pending updates
        first (read-your-writes); the default answers from the last
        flushed snapshot.
        """
        with self._lock:
            if consistency == "fresh":
                self.flush()
            elif consistency != "snapshot":
                raise ValueError(f"unknown consistency {consistency!r}")
            self.metrics.counter("requests_query").inc()
            snap = self._snapshot
            if kind == "size":
                return len(snap)
            if kind == "edges":
                return set(snap)
            if kind == "contains":
                u, v = payload
                e = (u, v) if u < v else (v, u)
                return e in snap
            if kind in ("distance", "connected"):
                u, v = payload
                adj = self._adjacency()
                if u == v:
                    d = 0
                elif u not in adj:
                    d = None  # isolated vertex: unreachable
                else:
                    d = bfs_distances(adj, u).get(v)
                if kind == "connected":
                    return d is not None
                return float("inf") if d is None else float(d)
            raise ValueError(f"unknown query kind {kind!r}")

    # -- flushing ------------------------------------------------------------

    def pump(self, now: float | None = None) -> bool:
        """Flush if the batcher says it is due; returns True if it flushed."""
        with self._lock:
            if now is None:
                now = self._clock()
            if self.batcher.should_flush(
                self.queue.depth, self.queue.oldest_enqueued_at(), now
            ):
                self._flush_locked(now)
                return True
            return False

    def flush(self) -> DrainResult | None:
        """Unconditionally drain and apply whatever is pending."""
        with self._lock:
            if self.queue.depth == 0:
                return None
            return self._flush_locked(self._clock())

    def _flush_locked(self, now: float) -> DrainResult:
        drained = self.queue.drain(now=now)
        m = self.metrics
        if drained.batch.size:
            # latency is real wall time even when flush *decisions* run on
            # an injected (possibly simulated) clock
            t0 = time.perf_counter()
            result = self.executor.apply(drained.batch)
            latency = time.perf_counter() - t0
            self.batcher.record_flush(drained.batch.size, result.work)
            self._snapshot -= result.delta_del
            self._snapshot |= result.delta_ins
            if self._adj is not None:
                for a, b in result.delta_del:
                    self._adj[a].discard(b)
                    self._adj[b].discard(a)
                for a, b in result.delta_ins:
                    self._adj.setdefault(a, set()).add(b)
                    self._adj.setdefault(b, set()).add(a)
            m.counter("flushes").inc()
            m.counter("ops_applied").inc(drained.batch.size)
            m.histogram("batch_size").observe(drained.batch.size)
            m.histogram("flush_latency_s").observe(latency)
            m.histogram("batch_work").observe(result.work)
            m.histogram("batch_critical_work").observe(result.critical_work)
            m.histogram("batch_depth").observe(result.depth)
        m.counter("ops_coalesced_away").inc(drained.coalesced_away)
        m.counter("ops_expired").inc(drained.expired_ops)
        m.histogram("coalesce_ratio").observe(drained.coalesce_ratio)
        m.gauge("queue_depth").set(self.queue.depth)
        m.gauge("adaptive_max_batch").set(self.batcher.current_max_batch)
        return drained

    # -- background flusher --------------------------------------------------

    def start(self) -> None:
        """Run a daemon thread that enforces the latency deadline."""
        if self._thread is not None:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.is_set():
                with self._lock:
                    now = self._clock()
                    wait = self.batcher.seconds_until_deadline(
                        self.queue.oldest_enqueued_at(), now
                    )
                    if wait <= 0.0:
                        self._flush_locked(now)
                        wait = self.config.batcher.max_delay
                self._stop.wait(min(wait, self.config.batcher.max_delay))

        self._thread = threading.Thread(
            target=loop, name="repro-service-flusher", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the background flusher and apply any remaining updates."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self.flush()

    def close(self) -> None:
        """Stop the flusher and shut the executor down."""
        self.stop()
        self.executor.close()

    def __enter__(self) -> "SpannerService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- inspection ----------------------------------------------------------

    def snapshot_edges(self) -> set[Edge]:
        """The output edge set as of the last flush."""
        with self._lock:
            return set(self._snapshot)

    def graph_edges(self) -> set[Edge]:
        """The *graph* edge set implied by every applied batch."""
        with self._lock:
            return self.queue.live_edges

    def self_check(self, deep: bool = False):
        """Cross-check the served state against the shared oracle
        (:func:`repro.oracle.verify_service`): flush pending updates, then
        replay every applied batch through a freshly built backend and
        compare output/graph views.  Returns a
        :class:`~repro.oracle.service.ServiceVerification`.
        """
        from repro.oracle.service import verify_service

        with self._lock:
            self.flush()
            return verify_service(self, self.executor, deep=deep)

    def _adjacency(self) -> dict[int, set[int]]:
        if self._adj is None:
            adj: dict[int, set[int]] = {}
            for a, b in self._snapshot:
                adj.setdefault(a, set()).add(b)
                adj.setdefault(b, set()).add(a)
            self._adj = adj
        return self._adj

"""Static ``Contract(G, x)`` (Lemma 4.1 / Algorithm 3).

A thin functional wrapper over :class:`~repro.contraction.layer.ContractionLayer`
for one-shot use and for verifying the lemma's guarantees in isolation:
given a simple graph and a rate ``x``, sample ``D ⊆ V`` with probability
``1/x``, contract every vertex into a sampled neighbor (``HEAD``), and
return ``(contracted_edges, H, head)`` such that any ``L``-spanner of the
contracted graph pulls back (via :func:`pullback_spanner`) to a
``(3L+2)``-spanner of ``G`` containing all of ``H``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.contraction.layer import ContractionLayer
from repro.graph.dynamic_graph import Edge, norm_edge

__all__ = ["contract", "pullback_spanner"]


def contract(
    n: int,
    edges: Iterable[Edge],
    x: float,
    seed: int | None = None,
) -> tuple[set[Edge], set[Edge], list[int], ContractionLayer]:
    """One-shot Lemma 4.1 contraction.

    Returns ``(contracted_edges, H, head, layer)``; ``head[v] == -1`` means
    ``f(v) = ⊥``, and the ``layer`` object exposes the representative map
    needed by :func:`pullback_spanner`.
    """
    if x < 1:
        raise ValueError("x must be >= 1")
    rng = np.random.default_rng(seed)
    sampled = (rng.random(n) < 1.0 / x).tolist()
    layer = ContractionLayer(n, sampled, seed=int(rng.integers(0, 2**63)))
    layer.update(insertions=[norm_edge(u, v) for u, v in edges])
    return (
        layer.contracted_edges(),
        layer.kept_edges(),
        list(layer.head),
        layer,
    )


def pullback_spanner(
    layer: ContractionLayer, contracted_spanner: Iterable[Edge]
) -> set[Edge]:
    """Lemma 4.1's spanner assembly: ``H`` plus one corresponding edge per
    contracted spanner edge."""
    out = set(layer.kept_edges())
    for e in contracted_spanner:
        out.add(layer.rep_of(norm_edge(*e)))
    return out

"""The contraction-rate sequences of Lemmas 4.2 / 4.3.

Theorem 1.3 contracts the graph through ``L = O(log log log n)`` levels with
rates ``x_0 = 100``, ``x_i = 100^{1.5^i - 1.5^{i-1}}`` such that

* every ``x_i >= 2``,
* ``prod x_i = Theta(log n)`` (Lemma 4.3 truncates and rescales the last
  entry), and
* ``sum x_i / (x_0 ... x_{i-1}) = O(1)`` — which keeps the union of the
  per-level ``H_i`` sets at ``O(n)`` edges.

At laptop-scale ``n`` the sequence degenerates to one or two entries (``log
n`` is tiny compared to 100); the functions below handle that regime while
preserving the lemma's invariants.
"""

from __future__ import annotations

import math

__all__ = ["contraction_sequence", "sequence_invariants_hold"]


def contraction_sequence(n: int, target: float | None = None) -> list[float]:
    """Rates per Lemma 4.3: product ``Theta(target)`` (default ``log2 n``),
    every entry in ``[2, 100^{1.5^i - 1.5^{i-1}}]``."""
    if target is None:
        target = math.log2(max(n, 4))
    if target <= 2.0:
        return [2.0]
    xs: list[float] = []
    prod = 1.0
    i = 0
    while prod < target:
        nominal = 100.0 if i == 0 else 100.0 ** (1.5**i - 1.5 ** (i - 1))
        if prod * nominal >= target:
            # Lemma 4.3: scale the final entry so the product lands on
            # target exactly, but never below 2.
            xs.append(max(2.0, target / prod))
            prod *= xs[-1]
            break
        xs.append(nominal)
        prod *= nominal
        i += 1
    return xs


def sequence_invariants_hold(xs: list[float], n: int) -> bool:
    """Check the three Lemma 4.2 conditions for a candidate sequence."""
    if not xs or any(x < 2 for x in xs):
        return False
    prod = 1.0
    overhead = 0.0
    for x in xs:
        overhead += x / prod
        prod *= x
    logn = math.log2(max(n, 4))
    return prod >= min(logn, 2.0) - 1e-9 and overhead <= 200.0

"""Batch-dynamic sparse spanner via nested contractions (Theorem 1.3).

``L`` contraction layers (Lemma 4.1 each) shrink the vertex set by the
Lemma 4.3 rate sequence until only ``~n / log n`` vertices remain; the final
level runs the fully-dynamic Theorem 1.1 spanner with ``k = Θ(log n)``.  The
output spanner of level ``i`` is

    ``out_i = H_i  ∪  { rep_i(e') : e' ∈ out_{i+1} }``

(Lemma 4.1's "corresponding edges"), and ``out_0`` is the maintained sparse
spanner: O(n) expected edges, stretch ``prod (3·s+2)``-style composition —
:meth:`stretch_bound` reports the exact guaranteed figure.

An update batch flows *down* through the layers (each layer translating it
into a contracted-edge batch for the next) and the spanner delta flows back
*up* through the representative maps.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.contraction.layer import ContractionLayer
from repro.contraction.sequences import contraction_sequence
from repro.graph.dynamic_graph import Edge, norm_edge
from repro.pram.cost import NULL_COST_MODEL, CostModel
from repro.spanner.fully_dynamic import FullyDynamicSpanner

__all__ = ["SparseSpannerDynamic"]


class SparseSpannerDynamic:
    """Theorem 1.3: O(n)-edge, Õ(log n)-stretch batch-dynamic spanner.

    Parameters
    ----------
    n, edges:
        Initial graph.
    rates:
        Contraction rates ``x_0..x_{L-1}`` (default: Lemma 4.3 sequence for
        this ``n``).
    k_final:
        Stretch parameter of the top-level Theorem 1.1 spanner (default
        ``ceil(log2 n)``, giving an O(log n)-spanner there).
    seed:
        Master randomness (vertex samples, per-entry random values, shifts).
    """

    def __init__(
        self,
        n: int,
        edges: Iterable[Edge] = (),
        rates: list[float] | None = None,
        k_final: int | None = None,
        seed: int | None = None,
        base_capacity: int | None = None,
        cost: CostModel = NULL_COST_MODEL,
    ) -> None:
        self.n = n
        self._cost = cost
        rng = np.random.default_rng(seed)
        if rates is None:
            rates = contraction_sequence(n)
        if any(x < 1 for x in rates):
            raise ValueError("contraction rates must be >= 1")
        self.rates = list(rates)
        if k_final is None:
            k_final = max(2, math.ceil(math.log2(max(n, 4))))
        self.k_final = k_final

        # Fixed nested vertex samples: V_0 = V, V_{i+1} = sample(V_i, 1/x_i).
        # (Sampling is independent of the edges — oblivious adversary.)
        in_level = np.ones(n, dtype=bool)
        self.layers: list[ContractionLayer] = []
        self._vertex_sets: list[np.ndarray] = [in_level.copy()]
        for x in self.rates:
            keep = in_level & (rng.random(n) < 1.0 / x)
            if not keep.any() and in_level.any():
                # V' must be nonempty (Lemma 4.1); w.h.p. this never
                # triggers at real sizes, but tiny tests need the fallback.
                idx = np.flatnonzero(in_level)
                keep[idx[int(rng.integers(0, len(idx)))]] = True
            layer = ContractionLayer(
                n,
                keep.tolist(),
                seed=int(rng.integers(0, 2**63 - 1)),
                cost=cost,
            )
            self.layers.append(layer)
            in_level = keep
            self._vertex_sets.append(in_level.copy())

        self.top = FullyDynamicSpanner(
            n,
            k=self.k_final,
            seed=int(rng.integers(0, 2**63 - 1)),
            base_capacity=base_capacity,
            cost=cost,
        )

        # out[i] bookkeeping for levels 0..L-1: H_i ⊎ pulled representatives
        # (disjoint at batch boundaries, so counts end at 1; refcounts only
        # bridge transient overlap while a batch's events are applied).
        # pull[i]: contracted edge in out_{i+1} -> its pulled-back edge.
        self._pull: list[dict[Edge, Edge]] = [dict() for _ in self.layers]
        self._out: list[dict[Edge, int]] = [dict() for _ in self.layers]

        if n and edges:
            self.update(insertions=edges)

    # -- queries -------------------------------------------------------------

    def spanner_edges(self) -> set[Edge]:
        """The maintained sparse spanner of the current graph."""
        if not self.layers:
            return self.top.spanner_edges()
        return {e for e, c in self._out[0].items() if c > 0}

    def spanner_size(self) -> int:
        """Number of edges in the maintained sparse spanner."""
        return len(self.spanner_edges())

    def stretch_bound(self) -> int:
        """The guaranteed stretch: Theorem 1.1 gives ``2k-1`` at the top and
        each contraction multiplies ``s -> 3s + 2`` (Lemma 4.1)."""
        s = 2 * self.k_final - 1
        for _ in self.layers:
            s = 3 * s + 2
        return s

    @property
    def num_levels(self) -> int:
        return len(self.layers)

    def level_edge_counts(self) -> list[int]:
        """Edges per contraction level, ending with the top-level graph."""
        counts = [layer.m for layer in self.layers]
        counts.append(self.top.m)
        return counts

    def graph_edges(self) -> set[Edge]:
        """The current (level-0) graph's edge set."""
        if self.layers:
            return self.layers[0].edges()
        return self.top.edges()

    # -- updates ----------------------------------------------------------------

    def update(
        self,
        insertions: Iterable[Edge] = (),
        deletions: Iterable[Edge] = (),
    ) -> tuple[set[Edge], set[Edge]]:
        """Apply a batch; returns the net spanner delta ``(ins, dels)``."""
        cur_ins = [norm_edge(u, v) for u, v in insertions]
        cur_del = [norm_edge(u, v) for u, v in deletions]

        # Downward pass: translate the batch through every layer.
        deltas = []
        for layer in self.layers:
            d = layer.update(insertions=cur_ins, deletions=cur_del)
            deltas.append(d)
            cur_ins, cur_del = d.next_ins, d.next_del

        # Top level: Theorem 1.1 (deletions must go first — a bucket that
        # changed representative contributes to rep_changes, not here).
        top_ins, top_dels = self.top.update(
            insertions=cur_ins, deletions=cur_del
        )

        # Upward pass: fold the spanner delta through the representatives.
        upper_ins, upper_del = top_ins, top_dels
        for i in range(len(self.layers) - 1, -1, -1):
            layer, d = self.layers[i], deltas[i]
            net: dict[Edge, int] = {}

            def bump(e: Edge, c: int) -> None:
                s = net.get(e, 0) + c
                if s == 0:
                    net.pop(e, None)
                else:
                    net[e] = s

            out, pull = self._out[i], self._pull[i]

            def inc(e: Edge) -> None:
                c = out.get(e, 0)
                out[e] = c + 1
                if c == 0:
                    bump(e, +1)

            def dec(e: Edge) -> None:
                c = out[e]
                if c == 1:
                    del out[e]
                    bump(e, -1)
                else:
                    out[e] = c - 1

            for e in d.h_del:
                dec(e)
            for e in d.h_ins:
                inc(e)
            for key, old_rep, new_rep in d.rep_changes:
                if key in pull:
                    assert pull[key] == old_rep
                    dec(old_rep)
                    inc(new_rep)
                    pull[key] = new_rep
            for key in upper_del:
                dec(pull.pop(key))
            for key in upper_ins:
                e = layer.rep_of(key)
                assert key not in pull
                pull[key] = e
                inc(e)
            assert all(c == 1 for c in out.values()), (
                "H_i and pulled representatives must be disjoint at batch end"
            )
            upper_ins = {e for e, c in net.items() if c > 0}
            upper_del = {e for e, c in net.items() if c < 0}
        return set(upper_ins), set(upper_del)

    def insert_batch(self, edges):
        """Insert-only convenience wrapper around :meth:`update`."""
        return self.update(insertions=edges)

    def delete_batch(self, edges):
        """Delete-only convenience wrapper around :meth:`update`."""
        return self.update(deletions=edges)

    # -- invariants (tests) --------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify every layer plus the pullback composition (tests)."""
        for i, layer in enumerate(self.layers):
            layer.check_invariants()
            # next level's edge set == this layer's bucket keys
            next_edges = (
                self.layers[i + 1].edges()
                if i + 1 < len(self.layers)
                else {e for e in self.top.spanner_edges() | set()} or set()
            )
            if i + 1 < len(self.layers):
                assert layer.contracted_edges() == next_edges
        if self.layers:
            last = self.layers[-1]
            top_graph_edges = {
                e for e in last.contracted_edges()
            }
            assert self.top.m == len(top_graph_edges)
            # out_i composition
            upper_out = self.top.spanner_edges()
            for i in range(len(self.layers) - 1, -1, -1):
                layer = self.layers[i]
                pulled = {layer.rep_of(e) for e in upper_out}
                want = layer.kept_edges() | pulled
                assert self._pull[i].keys() == set(upper_out)
                assert set(self._out[i]) == want, f"out[{i}] diverged"
                assert all(c == 1 for c in self._out[i].values())
                upper_out = set(self._out[i])
        self.top.check_invariants()

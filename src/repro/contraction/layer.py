"""One batch-dynamic contraction layer (Lemma 4.1 + Section 4.3).

A layer holds a graph ``G_i`` on a fixed vertex universe, a *fixed* sample
``V_{i+1}`` (drawn once, independent of edges — the oblivious-adversary
invariant of §4.3), per-adjacency-entry random values, and maintains:

* ``HEAD(v)`` — for unsampled ``v``, the sampled neighbor minimizing the
  ``(unmark, rand)`` key in ``ADJ(v)`` (⊥ = -1 when none); for sampled
  ``v``, itself,
* ``H`` — the layer's kept edges: every edge with a ⊥ endpoint plus the
  head edges ``(v, HEAD(v))``,
* ``NEXTLEVELEDGES`` — buckets mapping a contracted pair ``(HEAD(u),
  HEAD(v))`` to the set of underlying edges, with one *representative*
  (Bwd/FwdCORRESPONDENCE) per nonempty bucket; the bucket keys are exactly
  ``E_{i+1}``.

One :meth:`update` call implements the paper's cases D1–D4 and I1–I5 at
once: apply adjacency changes, recompute heads of touched endpoints
(expected O(1) incident-edge work per update — the min of i.i.d. keys moves
with probability ``1/deg``), re-image affected edges, and reconcile bucket
representatives.  It returns the edge updates to forward to layer ``i+1``
plus the layer's own ``H`` delta and representative swaps.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.graph.dynamic_graph import Edge, norm_edge
from repro.pram.cost import NULL_COST_MODEL, CostModel, log2ceil
from repro.structures.ordered_list import OrderedMap

__all__ = ["ContractionLayer", "LayerDelta"]

BOTTOM = -1


class LayerDelta:
    """Everything one layer reports for a single update batch."""

    __slots__ = ("next_ins", "next_del", "rep_changes", "h_ins", "h_del")

    def __init__(self, next_ins, next_del, rep_changes, h_ins, h_del):
        self.next_ins: list[Edge] = next_ins
        self.next_del: list[Edge] = next_del
        #: (contracted_edge, old_rep, new_rep) for surviving buckets
        self.rep_changes: list[tuple[Edge, Edge, Edge]] = rep_changes
        self.h_ins: list[Edge] = h_ins
        self.h_del: list[Edge] = h_del


class ContractionLayer:
    """Section 4.3 data structure for one level of NestedContract."""

    def __init__(
        self,
        n: int,
        sampled: Sequence[bool],
        seed: int | None = None,
        cost: CostModel = NULL_COST_MODEL,
    ) -> None:
        if len(sampled) != n:
            raise ValueError("sampled flags must cover all vertices")
        self.n = n
        self.sampled = list(sampled)
        self._cost = cost
        self._rng = np.random.default_rng(seed)

        self.adj: list[OrderedMap] = [
            OrderedMap(cost=cost, seed=None) for _ in range(n)
        ]
        # (unmark, rand, w) key of each directed adjacency entry
        self._entry_key: dict[tuple[int, int], tuple[int, float, int]] = {}
        self.head: list[int] = [
            v if sampled[v] else BOTTOM for v in range(n)
        ]
        self.h_edges: set[Edge] = set()
        # contracted pair -> set of underlying edges
        self.buckets: dict[Edge, set[Edge]] = {}
        # contracted pair -> representative underlying edge (Bwd); inverse
        # is implied (an edge represents at most one pair).
        self.rep: dict[Edge, Edge] = {}
        self._edges: set[Edge] = set()
        self._image: dict[Edge, Edge | None] = {}

    # -- small helpers -----------------------------------------------------

    def _compute_head(self, v: int) -> int:
        if self.sampled[v]:
            return v
        if len(self.adj[v]) == 0:
            return BOTTOM
        (unmark, _rand, w), _ = self.adj[v].min_item()
        return w if unmark == 0 else BOTTOM

    def _image_of(self, e: Edge) -> Edge | None:
        u, v = e
        hu, hv = self.head[u], self.head[v]
        if hu == BOTTOM or hv == BOTTOM or hu == hv:
            return None
        return norm_edge(hu, hv)

    def _in_h(self, e: Edge) -> bool:
        u, v = e
        hu, hv = self.head[u], self.head[v]
        return hu == BOTTOM or hv == BOTTOM or hu == v or hv == u

    # -- queries --------------------------------------------------------------

    @property
    def m(self) -> int:
        return len(self._edges)

    def edges(self) -> set[Edge]:
        """The layer's current edge set ``E_i``."""
        return set(self._edges)

    def head_of(self, v: int) -> int:
        """``HEAD(v)`` (-1 encodes ⊥)."""
        return self.head[v]

    def contracted_edges(self) -> set[Edge]:
        """The current ``E_{i+1}`` (bucket keys)."""
        return set(self.buckets)

    def rep_of(self, contracted: Edge) -> Edge:
        """The representative (corresponding) edge of a contracted edge."""
        return self.rep[contracted]

    def kept_edges(self) -> set[Edge]:
        """The current ``H_i``."""
        return set(self.h_edges)

    # -- the update procedure (cases D1-D4 / I1-I5) -----------------------------

    def update(
        self,
        insertions: Iterable[Edge] = (),
        deletions: Iterable[Edge] = (),
    ) -> LayerDelta:
        """Apply one batch; returns the :class:`LayerDelta` for the next level."""
        insertions = [norm_edge(u, v) for u, v in insertions]
        deletions = [norm_edge(u, v) for u, v in deletions]
        logn = log2ceil(max(self.n, 2))

        touched: set[int] = set()
        dirty_buckets: set[Edge] = set()
        h_net: dict[Edge, int] = {}

        def bump_h(e: Edge, d: int) -> None:
            c = h_net.get(e, 0) + d
            if c == 0:
                h_net.pop(e, None)
            else:
                h_net[e] = c

        # Phase A: apply deletions (covers D1-D4 bookkeeping on the edge
        # itself; head recomputation is deferred to phase B).
        with self._cost.parallel() as par:
            for e in deletions:
                with par.task():
                    if e not in self._edges:
                        raise KeyError(f"edge {e} not present")
                    self._edges.remove(e)
                    u, v = e
                    self.adj[u].delete(self._entry_key.pop((u, v)))
                    self.adj[v].delete(self._entry_key.pop((v, u)))
                    img = self._image.pop(e)
                    if img is not None:
                        self.buckets[img].remove(e)
                        dirty_buckets.add(img)
                    if e in self.h_edges:
                        self.h_edges.remove(e)
                        bump_h(e, -1)
                    touched.add(u)
                    touched.add(v)
                    self._cost.charge(work=4 * logn, depth=logn)

        # Phase A': apply insertions to the adjacency (I1-I5 bookkeeping of
        # the new entries; imaging in phase C).
        with self._cost.parallel() as par:
            for e in insertions:
                with par.task():
                    if e in self._edges:
                        raise ValueError(f"duplicate edge {e}")
                    self._edges.add(e)
                    u, v = e
                    for a, b in ((u, v), (v, u)):
                        key = (
                            0 if self.sampled[b] else 1,
                            float(self._rng.random()),
                            b,
                        )
                        self._entry_key[(a, b)] = key
                        self.adj[a].insert(key, b)
                    touched.add(u)
                    touched.add(v)
                    self._cost.charge(work=4 * logn, depth=logn)

        # Phase B: recompute heads of touched vertices.  Sampled vertices
        # never change; an unsampled vertex's head moves only when the
        # minimum (unmark, rand) key of its adjacency moved.
        head_changed: list[int] = []
        with self._cost.parallel() as par:
            for v in sorted(touched):
                with par.task():
                    new = self._compute_head(v)
                    self._cost.charge(work=logn, depth=logn)
                    if new != self.head[v]:
                        self.head[v] = new
                        head_changed.append(v)

        # Phase C: re-image every edge whose image may have changed: the
        # new edges plus all edges incident to a head-changed vertex (the
        # deg(v)-sized work the paper charges to the 1/deg(v) probability).
        affected: set[Edge] = set(insertions)
        for v in head_changed:
            for (_unmark, _rand, w), _ in self.adj[v].items():
                affected.add(norm_edge(v, w))
        with self._cost.parallel() as par:
            for e in sorted(affected):
                with par.task():
                    if e not in self._edges:
                        continue
                    old_img = self._image.get(e, "absent")
                    new_img = self._image_of(e)
                    if old_img != new_img:
                        if old_img not in (None, "absent"):
                            self.buckets[old_img].remove(e)
                            dirty_buckets.add(old_img)
                        if new_img is not None:
                            self.buckets.setdefault(new_img, set()).add(e)
                            dirty_buckets.add(new_img)
                        self._image[e] = new_img
                    in_h_now = self._in_h(e)
                    was_in_h = e in self.h_edges
                    if in_h_now and not was_in_h:
                        self.h_edges.add(e)
                        bump_h(e, +1)
                    elif was_in_h and not in_h_now:
                        self.h_edges.remove(e)
                        bump_h(e, -1)
                    self._cost.charge(work=3 * logn, depth=logn)

        # Phase D: reconcile bucket representatives; emits the next-level
        # delta and representative swaps.
        next_ins: list[Edge] = []
        next_del: list[Edge] = []
        rep_changes: list[tuple[Edge, Edge, Edge]] = []
        with self._cost.parallel() as par:
            for key in sorted(dirty_buckets):
                with par.task():
                    bucket = self.buckets.get(key)
                    old_rep = self.rep.get(key)
                    self._cost.charge(work=logn, depth=logn)
                    if not bucket:
                        self.buckets.pop(key, None)
                        if old_rep is not None:
                            del self.rep[key]
                            next_del.append(key)
                    elif old_rep is None:
                        self.rep[key] = min(bucket)
                        next_ins.append(key)
                    elif old_rep not in bucket:
                        new_rep = min(bucket)
                        self.rep[key] = new_rep
                        rep_changes.append((key, old_rep, new_rep))

        h_ins = [e for e, c in h_net.items() if c > 0]
        h_del = [e for e, c in h_net.items() if c < 0]
        return LayerDelta(next_ins, next_del, rep_changes, h_ins, h_del)

    # -- invariants (tests) -----------------------------------------------------

    def check_invariants(self) -> None:
        """Verify heads, images, buckets, H, and representatives (tests)."""
        for v in range(self.n):
            assert self.head[v] == self._compute_head(v), f"head[{v}] stale"
        want_h: set[Edge] = set()
        want_buckets: dict[Edge, set[Edge]] = {}
        for e in self._edges:
            if self._in_h(e):
                want_h.add(e)
            img = self._image_of(e)
            assert self._image[e] == img, f"image[{e}] stale"
            if img is not None:
                want_buckets.setdefault(img, set()).add(e)
        assert want_h == self.h_edges, "H diverged"
        got_buckets = {k: s for k, s in self.buckets.items() if s}
        assert got_buckets == want_buckets, "buckets diverged"
        assert set(self.rep) == set(got_buckets), "rep keys diverge"
        for key, r in self.rep.items():
            assert r in self.buckets[key]

"""Contractions and the sparse spanner of Theorem 1.3."""

from repro.contraction.contract import contract, pullback_spanner
from repro.contraction.layer import ContractionLayer, LayerDelta
from repro.contraction.nested import SparseSpannerDynamic
from repro.contraction.sequences import (
    contraction_sequence,
    sequence_invariants_hold,
)

__all__ = [
    "ContractionLayer",
    "LayerDelta",
    "SparseSpannerDynamic",
    "contract",
    "contraction_sequence",
    "pullback_spanner",
    "sequence_invariants_hold",
]

"""Witness-producing verification (certificates).

The plain oracles in :mod:`repro.verify` answer yes/no; these variants
return *evidence* — the violating pair and its detour for stretch, the
violating cut for sparsifiers, the witnessing path for valid queries — so
test failures and user-facing validation reports are actionable.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.graph.dynamic_graph import Edge, norm_edge
from repro.graph.traversal import adjacency_from_edges

__all__ = [
    "StretchViolation",
    "find_stretch_violation",
    "shortest_detour",
    "CutViolation",
    "find_cut_violation",
]


@dataclass
class StretchViolation:
    """Certificate that ``H`` is not a ``t``-spanner of ``G``."""

    edge: Edge  #: the graph edge whose endpoints are too far apart in H
    detour_length: float  #: spanner distance (inf = disconnected)
    bound: float  #: the violated bound t
    detour: list[int] | None  #: the best spanner path, if one exists

    def __str__(self) -> str:
        return (
            f"edge {self.edge}: spanner detour {self.detour_length} "
            f"exceeds bound {self.bound} (path: {self.detour})"
        )


def shortest_detour(
    n: int, h_edges: Iterable[Edge], u: int, v: int, cap: int | None = None
) -> list[int] | None:
    """Shortest ``u``→``v`` path in ``H`` (vertex list), or None."""
    adj = adjacency_from_edges(n, h_edges)
    limit = cap if cap is not None else n
    parent: dict[int, int | None] = {u: None}
    queue = deque([(u, 0)])
    while queue:
        x, d = queue.popleft()
        if x == v:
            path = [v]
            while parent[path[-1]] is not None:
                path.append(parent[path[-1]])
            return list(reversed(path))
        if d == limit:
            continue
        for w in adj[x]:
            if w not in parent:
                parent[w] = x
                queue.append((w, d + 1))
    return None


def find_stretch_violation(
    n: int,
    g_edges: Iterable[Edge],
    h_edges: Iterable[Edge],
    t: float,
) -> StretchViolation | None:
    """First graph edge whose spanner detour exceeds ``t`` (None = valid
    spanner).  Checking edges suffices for the spanner property."""
    g_edges = [norm_edge(u, v) for u, v in g_edges]
    h_list = [norm_edge(u, v) for u, v in h_edges]
    cap = int(math.floor(t))
    from repro.graph.traversal import bfs_distances_bounded

    h_adj = adjacency_from_edges(n, h_list)
    by_source: dict[int, list[int]] = {}
    for u, v in g_edges:
        by_source.setdefault(u, []).append(v)
    for u, targets in by_source.items():
        dist = bfs_distances_bounded(h_adj, u, cap)
        for v in targets:
            if v not in dist:
                detour = shortest_detour(n, h_list, u, v)
                return StretchViolation(
                    edge=(u, v),
                    detour_length=(
                        math.inf if detour is None else len(detour) - 1
                    ),
                    bound=t,
                    detour=detour,
                )
    return None


@dataclass
class CutViolation:
    """Certificate that a weighted ``H`` misestimates a cut of ``G``."""

    side: frozenset[int]
    exact: float
    approx: float
    epsilon: float

    def __str__(self) -> str:
        return (
            f"cut {sorted(self.side)}: exact {self.exact}, sparsifier "
            f"{self.approx}, outside (1±{self.epsilon})"
        )


def find_cut_violation(
    n: int,
    g_weighted: Mapping[Edge, float],
    h_weighted: Mapping[Edge, float],
    epsilon: float,
    cuts: Iterable[Iterable[int]],
) -> CutViolation | None:
    """First of the given cuts whose sparsifier estimate falls outside
    ``(1±ε)`` of the exact value (None = all sampled cuts fine)."""
    from repro.verify.spectral import cut_weight

    for cut in cuts:
        side = frozenset(cut)
        if not side or len(side) >= n:
            continue
        exact = cut_weight(g_weighted, set(side))
        approx = cut_weight(h_weighted, set(side))
        if exact == 0 and approx == 0:
            continue
        lo, hi = (1 - epsilon) * approx, (1 + epsilon) * approx
        if not (lo <= exact <= hi):
            return CutViolation(side, exact, approx, epsilon)
    return None

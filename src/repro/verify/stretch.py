"""Stretch verification oracles.

A subgraph ``H`` of ``G`` is a ``t``-spanner iff for every *edge* ``(u, v)``
of ``G``, ``dist_H(u, v) <= t`` (checking edges suffices: concatenating the
per-edge detours bounds every path).  :func:`spanner_stretch` returns the
exact stretch max over edges; :func:`is_spanner` thresholds it.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.graph.dynamic_graph import Edge, norm_edge
from repro.graph.traversal import adjacency_from_edges, bfs_distances_bounded

__all__ = ["spanner_stretch", "is_spanner", "pairwise_stretch"]


def spanner_stretch(
    n: int,
    g_edges: Iterable[Edge],
    h_edges: Iterable[Edge],
    cap: int | None = None,
) -> float:
    """Exact stretch of ``H`` w.r.t. ``G``: ``max_{(u,v) in G} dist_H(u, v)``.

    Returns ``inf`` if some ``G``-edge's endpoints are disconnected in ``H``
    (or farther apart than ``cap``, when given — pass a cap to keep the BFS
    shallow when you only care whether the stretch is below it).
    """
    g_edges = [norm_edge(u, v) for u, v in g_edges]
    h_adj = adjacency_from_edges(n, h_edges)
    limit = cap if cap is not None else n
    # Group queries by source to share BFS work.
    by_source: dict[int, list[int]] = {}
    for u, v in g_edges:
        by_source.setdefault(u, []).append(v)
    worst = 0.0
    for u, targets in by_source.items():
        need = max  # noqa: F841  (documentation: BFS depth needed)
        dist = bfs_distances_bounded(h_adj, u, limit)
        for v in targets:
            d = dist.get(v)
            if d is None:
                return math.inf
            worst = max(worst, float(d))
    return worst


def is_spanner(
    n: int,
    g_edges: Iterable[Edge],
    h_edges: Iterable[Edge],
    t: float,
) -> bool:
    """True iff ``H ⊆ G`` and ``H`` is a ``t``-spanner of ``G``."""
    g_set = {norm_edge(u, v) for u, v in g_edges}
    h_list = [norm_edge(u, v) for u, v in h_edges]
    if any(e not in g_set for e in h_list):
        return False
    cap = int(math.floor(t))
    return spanner_stretch(n, g_set, h_list, cap=cap) <= t


def pairwise_stretch(
    n: int,
    g_edges: Iterable[Edge],
    h_edges: Iterable[Edge],
    pairs: Iterable[tuple[int, int]],
) -> float:
    """Max of ``dist_H(u, v) / dist_G(u, v)`` over the given pairs (for
    sampled stretch estimates on larger graphs)."""
    g_adj = adjacency_from_edges(n, g_edges)
    h_adj = adjacency_from_edges(n, h_edges)
    from repro.graph.traversal import bfs_distances

    worst = 0.0
    cache_g: dict[int, dict[int, int]] = {}
    cache_h: dict[int, dict[int, int]] = {}
    for u, v in pairs:
        if u == v:
            continue
        dg = cache_g.setdefault(u, bfs_distances(g_adj, u)).get(v)
        if dg is None:
            continue
        dh = cache_h.setdefault(u, bfs_distances(h_adj, u)).get(v)
        if dh is None:
            return math.inf
        worst = max(worst, dh / dg)
    return worst

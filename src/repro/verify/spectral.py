"""Spectral and cut verification oracles (Definitions 6.1–6.3).

The decisive quality measure for a weighted sparsifier ``H`` of ``G``: the
generalized eigenvalues of the pencil ``(L_G, L_H)`` restricted to the
complement of the shared kernel.  ``H`` is a (1±ε)-spectral sparsifier iff
all of them lie in ``[1-ε, 1+ε]`` (paper's Definition 6.2 sandwiches
``x^T L_G x`` by ``(1∓ε) x^T L_H x``).
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping

import numpy as np

from repro.graph.dynamic_graph import Edge, norm_edge
from repro.graph.traversal import connected_components

__all__ = [
    "laplacian",
    "quadratic_form",
    "pencil_eigenvalue_range",
    "is_spectral_sparsifier",
    "cut_weight",
    "max_cut_error",
]


def laplacian(
    n: int, weighted_edges: Mapping[Edge, float] | Iterable[tuple[Edge, float]]
) -> np.ndarray:
    """Dense weighted graph Laplacian (Definition 6.1)."""
    if isinstance(weighted_edges, Mapping):
        items = weighted_edges.items()
    else:
        items = list(weighted_edges)
    L = np.zeros((n, n))
    for (u, v), w in items:
        u, v = norm_edge(u, v)
        L[u, u] += w
        L[v, v] += w
        L[u, v] -= w
        L[v, u] -= w
    return L


def quadratic_form(L: np.ndarray, x: np.ndarray) -> float:
    """``x^T L x``."""
    return float(x @ L @ x)


def _component_basis(n: int, edges: Iterable[Edge]) -> np.ndarray:
    """Orthonormal basis of the orthogonal complement of the Laplacian
    kernel (the span of per-component indicator vectors)."""
    comps = connected_components(n, edges)
    K = np.zeros((n, len(comps)))
    for j, comp in enumerate(comps):
        for v in comp:
            K[v, j] = 1.0
    # null space of K^T = complement of indicators
    q, _ = np.linalg.qr(K, mode="complete")
    return q[:, len(comps):]


def pencil_eigenvalue_range(
    n: int,
    g_weighted: Mapping[Edge, float],
    h_weighted: Mapping[Edge, float],
) -> tuple[float, float]:
    """Range of generalized eigenvalues ``L_G v = λ L_H v`` on the
    complement of the kernel.

    Returns ``(0.0, inf)`` when the kernels (connected-component
    structures) differ — e.g. ``H`` disconnects something ``G`` connects.
    """
    import scipy.linalg

    g_edges = [e for e, w in g_weighted.items() if w > 0]
    h_edges = [e for e, w in h_weighted.items() if w > 0]
    if not g_edges and not h_edges:
        return (1.0, 1.0)
    comp_g = connected_components(n, g_edges)
    comp_h = connected_components(n, h_edges)
    if comp_g != comp_h:
        return (0.0, math.inf)
    Q = _component_basis(n, g_edges)
    if Q.shape[1] == 0:
        return (1.0, 1.0)
    Lg = laplacian(n, g_weighted)
    Lh = laplacian(n, h_weighted)
    A = Q.T @ Lg @ Q
    B = Q.T @ Lh @ Q
    vals = scipy.linalg.eigh(A, B, eigvals_only=True)
    return float(vals.min()), float(vals.max())


def is_spectral_sparsifier(
    n: int,
    g_weighted: Mapping[Edge, float],
    h_weighted: Mapping[Edge, float],
    epsilon: float,
) -> bool:
    """Definition 6.2 check via the exact pencil eigenvalue range."""
    lo, hi = pencil_eigenvalue_range(n, g_weighted, h_weighted)
    return (1.0 - epsilon) <= lo and hi <= (1.0 + epsilon)


def cut_weight(
    weighted_edges: Mapping[Edge, float], side: set[int]
) -> float:
    """Total weight crossing the cut ``(side, rest)``."""
    total = 0.0
    for (u, v), w in weighted_edges.items():
        if (u in side) != (v in side):
            total += w
    return total


def max_cut_error(
    n: int,
    g_weighted: Mapping[Edge, float],
    h_weighted: Mapping[Edge, float],
    cuts: Iterable[set[int]],
) -> float:
    """``max |w_G(cut) / w_H(cut) - 1|`` over the given cuts (sampled cut
    quality; Definition 6.3).  Cuts crossed by neither graph are skipped;
    a cut crossed by exactly one yields ``inf``."""
    worst = 0.0
    for cut in cuts:
        wg = cut_weight(g_weighted, cut)
        wh = cut_weight(h_weighted, cut)
        if wg == 0 and wh == 0:
            continue
        if wh == 0 or wg == 0:
            return math.inf
        worst = max(worst, abs(wg / wh - 1.0))
    return worst

"""Verification oracles: stretch, spectral, and cut quality."""

from repro.verify.certificates import (
    CutViolation,
    StretchViolation,
    find_cut_violation,
    find_stretch_violation,
    shortest_detour,
)
from repro.verify.spectral import (
    cut_weight,
    is_spectral_sparsifier,
    laplacian,
    max_cut_error,
    pencil_eigenvalue_range,
    quadratic_form,
)
from repro.verify.stretch import is_spanner, pairwise_stretch, spanner_stretch

__all__ = [
    "CutViolation",
    "StretchViolation",
    "cut_weight",
    "find_cut_violation",
    "find_stretch_violation",
    "shortest_detour",
    "is_spanner",
    "is_spectral_sparsifier",
    "laplacian",
    "max_cut_error",
    "pairwise_stretch",
    "pencil_eigenvalue_range",
    "quadratic_form",
    "spanner_stretch",
]

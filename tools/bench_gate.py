#!/usr/bin/env python
"""Benchmark regression gate for the batch-update and serving hot paths.

Runs a pinned subset of the ``benchmarks/`` scenarios — the E1 update
throughput loop, the SRV1 serving-throughput configuration, the SRV2
replica-scaling run, and the Lemma 3.1 substrate microbenchmark — and
compares the measured throughput against the committed baseline in
``BENCH_hotpath.json``.  A scenario that
regresses by more than the threshold (default 15%) fails the gate.

The JSON records, per scenario, wall-clock throughput (ops/sec), the p99
flush latency where applicable, and the cost-model work/depth constants.
The constants are machine-independent: they must stay *identical* across
refactors of the charging code (charge preservation), so the gate fails on
any drift in them regardless of the throughput threshold.

Usage::

    PYTHONPATH=src python tools/bench_gate.py                  # gate
    PYTHONPATH=src python tools/bench_gate.py --update-baseline
    PYTHONPATH=src python tools/bench_gate.py --smoke          # CI wiring

* default: measure, write ``BENCH_hotpath.latest.json``, exit 1 on
  regression against the committed ``BENCH_hotpath.json``;
* ``--update-baseline``: measure and (re)write ``BENCH_hotpath.json`` —
  run this on the reference machine after intentional perf changes and
  commit the result;
* ``--smoke``: miniature workloads and no throughput comparison (CI
  machines are too noisy for wall-clock gating); still validates the
  committed baseline's schema and the work/depth constants of the small
  scenarios, so the gate wiring itself cannot rot.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.pram import CostModel  # noqa: E402
from repro.service.driver import ServeConfig, run_serve  # noqa: E402
from repro.spanner import FullyDynamicSpanner  # noqa: E402
from repro.structures import PriorityArray, VectorPredicate  # noqa: E402
from repro.workloads import mixed_stream  # noqa: E402

BASELINE_PATH = ROOT / "BENCH_hotpath.json"
LATEST_PATH = ROOT / "BENCH_hotpath.latest.json"

#: throughput fields gated by the regression threshold
GATED_FIELDS = ("ops_per_sec",)
#: cost-model fields that must match the baseline exactly
EXACT_FIELDS = ("work", "depth")
#: headroom factor applied when (re)writing memory ceilings
MEMORY_HEADROOM = 1.5

#: snapshot adjacency substrate the serving scenarios run on; set from
#: --substrate so CI can gate both backends (charges must not move)
SUBSTRATE = "array"


def _best_of(repeats: int, fn):
    """(best elapsed seconds, last result) over ``repeats`` runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        dt = time.perf_counter() - t0
        best = min(best, dt)
    return best, result


def bench_e1_update_throughput(smoke: bool) -> dict:
    """Pinned ``test_e1_update_throughput``: mixed update stream through
    the fully-dynamic spanner (construction included, as in the bench)."""
    if smoke:
        n, m, batch, batches = 48, 160, 16, 4
    else:
        n, m, batch, batches = 128, 512, 64, 8
    wl = mixed_stream(n, m, batch_size=batch, num_batches=batches, seed=3)
    ops = sum(
        len(b.insertions) + len(b.deletions) for b in wl.batches
    )

    def run(cost=None):
        kw = {"cost": cost} if cost is not None else {}
        sp = FullyDynamicSpanner(n, wl.initial_edges, k=2, seed=3,
                                 base_capacity=64, **kw)
        for b in wl.batches:
            sp.update(insertions=b.insertions, deletions=b.deletions)
        return sp.spanner_size()

    elapsed, size = _best_of(1 if smoke else 3, run)
    assert size > 0
    cm = CostModel()
    run(cost=cm)
    return {
        "ops": ops,
        "ops_per_sec": round(ops / elapsed, 1),
        "work": cm.work,
        "depth": cm.depth,
        "work_per_op": round(cm.work / ops, 1),
    }


def bench_srv_service_throughput(smoke: bool) -> dict:
    """Pinned SRV1 deadline=8ms configuration (in-process shards, no
    verification pass — pure serving-loop wall clock)."""
    if smoke:
        cfg = ServeConfig(n=48, m=160, requests=600, seed=11, shards=2,
                          processes=False, max_delay=8e-3,
                          queue_capacity=4096, max_batch=100_000,
                          substrate=SUBSTRATE)
    else:
        cfg = ServeConfig(n=192, m=768, requests=6000, seed=11, shards=2,
                          processes=False, max_delay=8e-3,
                          queue_capacity=4096, max_batch=100_000,
                          substrate=SUBSTRATE)
    best_rps = 0.0
    report = None
    for _ in range(1 if smoke else 3):
        report = run_serve(cfg, verify=False)
        best_rps = max(best_rps, report.throughput_rps)
    m = report.metrics
    assert report.applied_ops > 0
    return {
        "ops": report.served,
        "ops_per_sec": round(best_rps, 1),
        "flush_p99_ms": round(1000 * m.get("flush_latency_s.p99", 0.0), 3),
        "batch_work_mean": round(m.get("batch_work.mean", 0.0), 1),
        "batch_depth_mean": round(m.get("batch_depth.mean", 0.0), 1),
    }


def bench_s_substrates(smoke: bool) -> dict:
    """Pinned Lemma 3.1 substrate loop: PriorityArray construction plus
    the NextWith galloping scans of ``bench_s_substrates``, on the
    array-native bulk path (``from_arrays`` + ``VectorPredicate``) — same
    item/scan counts and byte-identical charges as the scalar loop."""
    import numpy as np

    if smoke:
        universe, size, targets = 1 << 10, 256, (8, 64, 256)
        inner = 1
    else:
        universe, size, targets = 1 << 14, 4096, (8, 64, 512, 4096)
        # one build+scan pass lasts well under a millisecond — far too
        # short a window to gate at 15% (run-to-run noise alone exceeds
        # that); repeating it inside the timed region stretches the window
        inner = 16

    def once(cost=None):
        kw = {"cost": cost} if cost is not None else {}
        vals = np.arange(size)
        pa = PriorityArray.from_arrays(
            universe, vals, (universe - 2) - vals, **kw
        )
        for target in targets:
            pred = VectorPredicate(
                lambda v, t=target: v == t - 1,
                lambda a, t=target: a == t - 1,
            )
            q = pa.next_with(1, pred)
            assert q == target
        return pa

    def run():
        for _ in range(inner):
            once()

    elapsed, _ = _best_of(1 if smoke else 5, run)
    cm = CostModel()
    once(cost=cm)  # constants are per single build+scan pass
    ops = inner * (size + sum(targets))  # items built + positions scanned
    return {
        "ops": ops,
        "ops_per_sec": round(ops / elapsed, 1),
        "work": cm.work,
        "depth": cm.depth,
    }


def bench_srv2_replica_scaling(smoke: bool) -> dict:
    """Pinned SRV2 configuration: read throughput of an in-process
    primary + log-shipping replica cluster at 1 vs 3 replicas, with a
    pinned simulated per-query service time (so read capacity scales
    with replica count by construction, even on a 1-core CI box).
    Oracle-exact replica equivalence is asserted on every run; the full
    run additionally asserts the >=2.5x scaling acceptance bar."""
    from repro.net.bench import BenchNetConfig, run_bench_net

    if smoke:
        sizes = dict(requests=200, service_time=1e-3)
    else:
        sizes = dict(requests=2000, service_time=2e-3)
    rps = {}
    report = None
    for replicas in (1, 3):
        cfg = BenchNetConfig(replicas=replicas, seed=1234,
                             mode="inproc", **sizes)
        report = run_bench_net(cfg)
        assert report.verified, report.violations
        rps[replicas] = report.read_throughput_rps
    scaling = rps[3] / rps[1]
    if not smoke:
        assert scaling >= 2.5, (
            f"SRV2 scaling bar missed: 3-replica reads only {scaling:.2f}x "
            "the 1-replica throughput (acceptance requires >=2.5x)"
        )
    return {
        "ops": report.reads,
        "ops_per_sec": round(rps[3], 1),
        "read_p99_ms": round(report.read_p99_ms, 3),
        "scaling_x": round(scaling, 2),
    }


def bench_srv3_read_mix(smoke: bool) -> dict:
    """Pinned SRV3 configuration: batched vs query-at-a-time reads on a
    95/5 read-write mix.  Exact batch/singleton equivalence is asserted
    on every run; the full run additionally asserts the >=3x speedup
    acceptance bar, and the batched pass's cost-model work/depth land in
    the exact-match fields (shared-traversal charging is charge-
    preserving by construction — per-query sweeps creeping back in would
    blow the constants, not just the wall clock)."""
    from repro.queries.bench import BenchQueriesConfig, run_bench_queries

    if smoke:
        cfg = BenchQueriesConfig(requests=800, repeats=1,
                                 substrate=SUBSTRATE)
    else:
        cfg = BenchQueriesConfig(repeats=3, substrate=SUBSTRATE)
    report = run_bench_queries(cfg)
    assert report.verified, report.violations
    if not smoke:
        assert report.speedup_x >= 3.0, (
            f"SRV3 speedup bar missed: batched reads only "
            f"{report.speedup_x:.2f}x the singleton path "
            "(acceptance requires >=3x)"
        )
    return {
        "ops": report.reads,
        "ops_per_sec": round(report.batched_rps, 1),
        "speedup_x": round(report.speedup_x, 2),
        "work": report.work,
        "depth": report.depth,
        "dedup_ratio": round(report.dedup_ratio, 3),
    }


SCENARIOS = {
    "bench_e1": bench_e1_update_throughput,
    "bench_srv_service_throughput": bench_srv_service_throughput,
    "bench_s_substrates": bench_s_substrates,
    "bench_srv2_replica_scaling": bench_srv2_replica_scaling,
    "bench_srv3_read_mix": bench_srv3_read_mix,
}


def _peak_rss_mb() -> float:
    """Process peak RSS in MB (Linux ru_maxrss is KB; macOS is bytes)."""
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - dev machines only
        peak //= 1024
    return peak / 1024.0


def measure(smoke: bool) -> dict:
    out = {
        "schema": 1,
        "mode": "smoke" if smoke else "full",
        "scenarios": {},
    }
    for name, fn in SCENARIOS.items():
        print(f"[bench_gate] running {name} ...", flush=True)
        t0 = time.perf_counter()
        row = fn(smoke)
        # informational only — compare() never reads these (wall time is
        # machine-dependent; peak RSS is the process high-water mark, so
        # per-scenario values are monotone over the run order)
        row["wall_seconds"] = round(time.perf_counter() - t0, 3)
        # peak RSS is the process high-water mark, so per-scenario values
        # are monotone over the run order; each is gated against its own
        # committed ceiling (see compare)
        row["peak_rss_mb"] = round(_peak_rss_mb(), 1)
        out["scenarios"][name] = row
    return out


def set_memory_ceilings(doc: dict) -> None:
    """Stamp each scenario's ``peak_rss_mb_ceiling`` from its measured
    ``peak_rss_mb`` with :data:`MEMORY_HEADROOM` headroom."""
    for row in doc.get("scenarios", {}).values():
        peak = row.get("peak_rss_mb")
        if peak:
            row["peak_rss_mb_ceiling"] = round(peak * MEMORY_HEADROOM, 1)


def compare(current: dict, baseline: dict, threshold: float,
            gate_throughput: bool) -> list[str]:
    """Failure messages (empty = gate passes)."""
    failures: list[str] = []
    base_scen = baseline.get("scenarios", {})
    for name, cur in current["scenarios"].items():
        base = base_scen.get(name)
        if base is None:
            failures.append(f"{name}: missing from baseline")
            continue
        for field in EXACT_FIELDS:
            if field in base and base[field] != cur.get(field):
                failures.append(
                    f"{name}: cost-model {field} drifted "
                    f"{base[field]} -> {cur.get(field)} (must be "
                    "charge-preserving; refresh the baseline only for "
                    "intentional charging changes)"
                )
        if not gate_throughput:
            continue
        # enforced memory ceiling (full runs only: smoke sizes differ).
        # RSS is machine-dependent but bounded — a blowup past the
        # committed ceiling means a copy crept into a hot path; refresh
        # intentional footprint changes with --update-memory
        ceiling = base.get("peak_rss_mb_ceiling")
        peak = cur.get("peak_rss_mb")
        if ceiling and peak and peak > ceiling:
            failures.append(
                f"{name}: peak_rss_mb {peak} exceeds the committed "
                f"ceiling {ceiling} (rerun with --update-memory for "
                "intentional footprint changes)"
            )
        for field in GATED_FIELDS:
            b, c = base.get(field), cur.get(field)
            if not b:
                continue
            if c < b * (1.0 - threshold):
                failures.append(
                    f"{name}: {field} regressed {b} -> {c} "
                    f"({100 * (1 - c / b):.1f}% > {100 * threshold:.0f}% "
                    "threshold)"
                )
    return failures


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="miniature sizes, no wall-clock gating (CI)")
    ap.add_argument("--update-baseline", action="store_true",
                    help=f"rewrite {BASELINE_PATH.name} from this run")
    ap.add_argument("--update-memory", action="store_true",
                    help="rewrite only the peak_rss_mb ceilings in "
                         f"{BASELINE_PATH.name} from this run (escape "
                         "hatch for intentional footprint changes)")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed fractional throughput regression")
    ap.add_argument("--substrate", choices=["array", "dict"],
                    default="array",
                    help="snapshot adjacency substrate for the serving "
                         "scenarios (charges must match the baseline on "
                         "both)")
    args = ap.parse_args(argv)

    global SUBSTRATE
    SUBSTRATE = args.substrate

    current = measure(args.smoke)

    if args.update_baseline:
        if args.smoke:
            print("[bench_gate] refusing to baseline smoke-sized runs")
            return 2
        set_memory_ceilings(current)
        BASELINE_PATH.write_text(json.dumps(current, indent=2) + "\n")
        print(f"[bench_gate] baseline written to {BASELINE_PATH}")
        return 0

    if args.update_memory:
        if args.smoke:
            print("[bench_gate] refusing to set ceilings from smoke runs")
            return 2
        if not BASELINE_PATH.exists():
            print(f"[bench_gate] no committed baseline at {BASELINE_PATH}")
            return 2
        baseline = json.loads(BASELINE_PATH.read_text())
        for name, row in current["scenarios"].items():
            base = baseline.get("scenarios", {}).get(name)
            peak = row.get("peak_rss_mb")
            if base is not None and peak:
                base["peak_rss_mb_ceiling"] = round(
                    peak * MEMORY_HEADROOM, 1
                )
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"[bench_gate] memory ceilings rewritten in {BASELINE_PATH}")
        return 0

    LATEST_PATH.write_text(json.dumps(current, indent=2) + "\n")
    if not BASELINE_PATH.exists():
        print(f"[bench_gate] no committed baseline at {BASELINE_PATH}; "
              "run with --update-baseline first")
        return 2
    baseline = json.loads(BASELINE_PATH.read_text())
    if baseline.get("schema") != 1 or "scenarios" not in baseline:
        print("[bench_gate] committed baseline has an unknown schema")
        return 2
    for name in SCENARIOS:
        if name not in baseline["scenarios"]:
            print(f"[bench_gate] baseline lacks scenario {name}")
            return 2

    # smoke runs use different sizes, so neither throughput nor constants
    # are comparable against the full-size committed baseline — the run
    # above plus the schema check is the wiring test
    failures = compare(current, baseline, args.threshold,
                       gate_throughput=not args.smoke) if not args.smoke \
        else []

    for name, cur in current["scenarios"].items():
        base = baseline["scenarios"].get(name, {})
        b = base.get("ops_per_sec")
        rel = f" ({cur['ops_per_sec'] / b:.2f}x baseline)" if b and \
            not args.smoke else ""
        print(f"[bench_gate] {name}: {cur['ops_per_sec']} ops/s{rel}")
    if failures:
        for f in failures:
            print(f"[bench_gate] FAIL {f}")
        return 1
    print("[bench_gate] gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
